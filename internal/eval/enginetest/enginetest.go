// Package enginetest provides the engine-independent conformance suite:
// a corpus of (document, query, context, expected result) cases that every
// evaluator in this repository must satisfy, plus helpers for cross-engine
// agreement testing on randomly generated queries.
//
// Keeping one suite shared by all five engines is what guarantees the
// paper's algorithms are compared on identical semantics: an engine that
// diverged would fail here rather than silently producing different
// benchmark numbers.
package enginetest

import (
	"fmt"
	"math"
	"testing"

	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

// Engine is the evaluation signature all engines expose for testing.
type Engine func(expr ast.Expr, ctx evalctx.Context) (value.Value, error)

// Caps describes which language features an engine supports; conformance
// cases requiring a missing capability are skipped for that engine.
type Caps struct {
	// Arithmetic: numbers, + - * div mod, relational operators on numbers.
	Arithmetic bool
	// Positional: position() and last().
	Positional bool
	// Strings: string literals, string functions, string comparisons.
	Strings bool
	// Negation: not(...).
	Negation bool
	// IteratedPredicates: steps with two or more predicates.
	IteratedPredicates bool
	// Aggregates: count() and sum().
	Aggregates bool
	// Conversions: the explicit conversion and node-inspection functions
	// string(), number(), name(), local-name(), string-length(),
	// normalize-space() — the functions Definition 6.1(2) excludes from
	// pXPath.
	Conversions bool
	// BooleanRelOp: relational operators with boolean-typed operands,
	// which Definition 6.1(3) excludes from pXPath (they can encode
	// negation).
	BooleanRelOp bool
}

// FullCaps is the capability set of a complete XPath 1.0 engine.
var FullCaps = Caps{
	Arithmetic: true, Positional: true, Strings: true,
	Negation: true, IteratedPredicates: true, Aggregates: true,
	Conversions: true, BooleanRelOp: true,
}

// PXPathCaps is the capability set of a pXPath engine with bounded
// negation (Definition 6.1 + Theorem 6.3): everything except iterated
// predicates, aggregates and the excluded conversion functions.
var PXPathCaps = Caps{
	Arithmetic: true, Positional: true, Strings: true, Negation: true,
}

// CoreCaps is the capability set of a Core XPath engine (Definition 2.5
// plus T(l)): logic and paths only.
var CoreCaps = Caps{Negation: true, IteratedPredicates: true}

// Case is one conformance case.
type Case struct {
	Name  string
	Doc   string // key into the Docs map
	Query string
	CtxID string // id attribute of the context node; "" = conceptual root
	// Exactly one of the Want fields is set.
	WantIDs   []string // node-set result, as id attributes in document order
	WantNum   *float64
	WantStr   *string
	WantBool  *bool
	WantCount *int // node-set result size only (for nodes without ids)
	Need      Caps
}

func num(f float64) *float64 { return &f }
func str(s string) *string   { return &s }
func boolean(b bool) *bool   { return &b }
func cnt(n int) *int         { return &n }

// Docs is the document corpus of the conformance suite, keyed by name.
var Docs = map[string]string{
	"library": `<library id="L">` +
		`<book id="b1" year="1994" cat="f"><title id="t1">Dune</title><price id="p1">12</price></book>` +
		`<book id="b2" year="2001" cat="s"><title id="t2">Ptolemy</title><price id="p2">30</price></book>` +
		`<book id="b3" year="2001" cat="f"><title id="t3">Norna</title><price id="p3">8</price><note id="n1">used</note></book>` +
		`<journal id="j1"><title id="t4">Sci</title></journal>` +
		`</library>`,
	"tree": `<r id="r">` +
		`<a id="a1"><b id="b1"><c id="c1"/><c id="c2"/></b><b id="b2"/></a>` +
		`<a id="a2"><b id="b3"/></a>` +
		`</r>`,
	"mixed": `<m id="m"><x id="x1">alpha</x><y id="y1"><x id="x2">beta</x></y><x id="x3">alpha</x></m>`,
}

// needPositional etc. are shorthands for the Need field.
var (
	needArith      = Caps{Arithmetic: true}
	needPos        = Caps{Arithmetic: true, Positional: true}
	needStr        = Caps{Strings: true}
	needNeg        = Caps{Negation: true}
	needIter       = Caps{IteratedPredicates: true}
	needAgg        = Caps{Aggregates: true, Arithmetic: true}
	needConv       = Caps{Strings: true, Conversions: true}
	needConvArith  = Caps{Strings: true, Conversions: true, Arithmetic: true}
	needIterPos    = Caps{IteratedPredicates: true, Arithmetic: true, Positional: true}
	needStrArith   = Caps{Strings: true, Arithmetic: true}
	needNegPosIter = Caps{Negation: true, Arithmetic: true, Positional: true, IteratedPredicates: true}
)

// Cases is the conformance corpus.
var Cases = []Case{
	// --- PF: plain location paths, all axes ---
	{Name: "root", Doc: "tree", Query: "/", WantIDs: []string{""}},
	{Name: "child-name", Doc: "tree", Query: "/child::r/child::a", WantIDs: []string{"a1", "a2"}},
	{Name: "child-star", Doc: "tree", Query: "/r/a[1]/*", WantIDs: []string{"b1", "b2"}, Need: needArith},
	{Name: "descendant", Doc: "tree", Query: "/descendant::b", WantIDs: []string{"b1", "b2", "b3"}},
	{Name: "descendant-or-self-star", Doc: "tree", Query: "/descendant-or-self::*", WantIDs: []string{"r", "a1", "b1", "c1", "c2", "b2", "a2", "b3"}},
	{Name: "dslash", Doc: "tree", Query: "//c", WantIDs: []string{"c1", "c2"}},
	{Name: "parent", Doc: "tree", Query: "//c/parent::b", WantIDs: []string{"b1"}},
	{Name: "dotdot", Doc: "tree", Query: "//c/..", WantIDs: []string{"b1"}},
	{Name: "ancestor", Doc: "tree", Query: "//c/ancestor::*", WantIDs: []string{"r", "a1", "b1"}},
	{Name: "ancestor-or-self", Doc: "tree", CtxID: "c2", Query: "ancestor-or-self::*", WantIDs: []string{"r", "a1", "b1", "c2"}},
	{Name: "following-sibling", Doc: "tree", CtxID: "b1", Query: "following-sibling::*", WantIDs: []string{"b2"}},
	{Name: "preceding-sibling", Doc: "tree", CtxID: "b2", Query: "preceding-sibling::*", WantIDs: []string{"b1"}},
	{Name: "following", Doc: "tree", CtxID: "b1", Query: "following::*", WantIDs: []string{"b2", "a2", "b3"}},
	{Name: "preceding", Doc: "tree", CtxID: "a2", Query: "preceding::*", WantIDs: []string{"a1", "b1", "c1", "c2", "b2"}},
	{Name: "self", Doc: "tree", CtxID: "b1", Query: "self::b", WantIDs: []string{"b1"}},
	{Name: "self-nomatch", Doc: "tree", CtxID: "b1", Query: "self::c", WantIDs: []string{}},
	{Name: "attribute", Doc: "library", CtxID: "b1", Query: "attribute::year", WantCount: cnt(1)},
	{Name: "attribute-star", Doc: "library", CtxID: "b1", Query: "@*", WantCount: cnt(3)},
	{Name: "attr-then-up", Doc: "library", CtxID: "b1", Query: "@year/..", WantIDs: []string{"b1"}},
	{Name: "path-composition", Doc: "tree", Query: "/r/a/b/c", WantIDs: []string{"c1", "c2"}},
	{Name: "dedup-after-steps", Doc: "tree", Query: "//c/ancestor::*/descendant::b", WantIDs: []string{"b1", "b2", "b3"}},
	{Name: "union", Doc: "tree", Query: "//c | //b", WantIDs: []string{"b1", "c1", "c2", "b2", "b3"}},
	{Name: "union-dedup", Doc: "tree", Query: "//b | /r/a/b", WantIDs: []string{"b1", "b2", "b3"}},
	{Name: "text-test", Doc: "mixed", Query: "//x/text()", WantCount: cnt(3)},
	{Name: "node-test", Doc: "mixed", CtxID: "m", Query: "child::node()", WantCount: cnt(3)},
	{Name: "empty-result", Doc: "tree", Query: "//zzz", WantIDs: []string{}},
	{Name: "relative-from-ctx", Doc: "tree", CtxID: "a1", Query: "b", WantIDs: []string{"b1", "b2"}},
	{Name: "absolute-ignores-ctx", Doc: "tree", CtxID: "c1", Query: "/r/a", WantIDs: []string{"a1", "a2"}},

	// --- Core XPath: predicates with logic ---
	{Name: "pred-exists", Doc: "tree", Query: "//b[c]", WantIDs: []string{"b1"}},
	{Name: "pred-and", Doc: "library", Query: "//book[title and price]", WantIDs: []string{"b1", "b2", "b3"}},
	{Name: "pred-and-false", Doc: "library", Query: "//book[title and note]", WantIDs: []string{"b3"}},
	{Name: "pred-or", Doc: "library", Query: "//book[note or journal]", WantIDs: []string{"b3"}},
	{Name: "pred-not", Doc: "library", Query: "//book[not(note)]", WantIDs: []string{"b1", "b2"}, Need: needNeg},
	{Name: "pred-nested-path", Doc: "tree", Query: "//a[b/c]", WantIDs: []string{"a1"}},
	{Name: "pred-absolute-path", Doc: "tree", Query: "//b[/r/a]", WantIDs: []string{"b1", "b2", "b3"}},
	{Name: "pred-not-not", Doc: "tree", Query: "//a[not(not(b))]", WantIDs: []string{"a1", "a2"}, Need: needNeg},
	{Name: "pred-deep", Doc: "tree", Query: "//a[b[c[not(b)]]]", WantIDs: []string{"a1"}, Need: needNeg},
	{Name: "paper-example-empty", Doc: "tree", Query: "/descendant::a/child::b[descendant::c and not(following-sibling::b)]", WantIDs: []string{}, Need: needNeg},
	{Name: "paper-example-shape", Doc: "tree", Query: "/descendant::a/child::b[descendant::c and not(preceding-sibling::b)]", WantIDs: []string{"b1"}, Need: needNeg},
	{Name: "pred-reverse-inner", Doc: "tree", CtxID: "c2", Query: "ancestor::*[parent::r]", WantIDs: []string{"a1"}},

	// --- positional predicates ---
	{Name: "pred-number", Doc: "library", Query: "//book[2]", WantIDs: []string{"b2"}, Need: needArith},
	{Name: "pred-position", Doc: "library", Query: "//book[position() = 2]", WantIDs: []string{"b2"}, Need: needPos},
	{Name: "pred-last", Doc: "library", Query: "//book[last()]", WantIDs: []string{"b3"}, Need: needPos},
	{Name: "pred-position-lt", Doc: "library", Query: "//book[position() < 3]", WantIDs: []string{"b1", "b2"}, Need: needPos},
	{Name: "paper-pos-example", Doc: "library", Query: "child::library/child::book[position() + 1 = last()]", WantIDs: []string{"b2"}, Need: needPos},
	{Name: "pred-number-reverse-axis", Doc: "tree", CtxID: "c2", Query: "ancestor::*[1]", WantIDs: []string{"b1"}, Need: needArith},
	{Name: "pred-position-reverse", Doc: "tree", CtxID: "b3", Query: "preceding::*[position() = 1]", WantIDs: []string{"b2"}, Need: needPos},
	{Name: "iterated-preds-rerank", Doc: "library", Query: "//book[position() > 1][1]", WantIDs: []string{"b2"}, Need: needIterPos},
	{Name: "iterated-preds-logic", Doc: "library", Query: "//book[price][note]", WantIDs: []string{"b3"}, Need: needIter},
	{Name: "iterated-equals-and", Doc: "library", Query: "//book[price and note]", WantIDs: []string{"b3"}},

	// --- arithmetic and comparisons ---
	{Name: "arith-basic", Doc: "library", Query: "1 + 2 * 3", WantNum: num(7), Need: needArith},
	{Name: "arith-div", Doc: "library", Query: "7 div 2", WantNum: num(3.5), Need: needArith},
	{Name: "arith-mod", Doc: "library", Query: "7 mod 2", WantNum: num(1), Need: needArith},
	{Name: "arith-unary", Doc: "library", Query: "-(1 + 2)", WantNum: num(-3), Need: needArith},
	{Name: "cmp-num", Doc: "library", Query: "1 < 2", WantBool: boolean(true), Need: needArith},
	{Name: "cmp-nodeset-num", Doc: "library", Query: "//price < 10", WantBool: boolean(true), Need: needArith},
	{Name: "cmp-nodeset-num-all", Doc: "library", Query: "//price > 100", WantBool: boolean(false), Need: needArith},
	{Name: "cmp-nodeset-eq-str", Doc: "mixed", Query: "//x = 'alpha'", WantBool: boolean(true), Need: needStr},
	{Name: "cmp-nodeset-nodeset", Doc: "mixed", Query: "/m/x = /m/y/x", WantBool: boolean(false), Need: needStr},
	{Name: "cmp-attr", Doc: "library", Query: "//book[@year = 2001]", WantIDs: []string{"b2", "b3"}, Need: needArith},
	{Name: "cmp-attr-str", Doc: "library", Query: "//book[@cat = 'f']", WantIDs: []string{"b1", "b3"}, Need: needStr},
	{Name: "pred-value", Doc: "library", Query: "//book[price = 30]", WantIDs: []string{"b2"}, Need: needArith},
	{Name: "pred-value-lt", Doc: "library", Query: "//book[price < 10]", WantIDs: []string{"b3"}, Need: needArith},
	{Name: "existential-multi", Doc: "mixed", Query: "//x[. = 'alpha']", WantIDs: []string{"x1", "x3"}, Need: needStr},

	// --- functions ---
	{Name: "count", Doc: "library", Query: "count(//book)", WantNum: num(3), Need: needAgg},
	{Name: "count-empty", Doc: "library", Query: "count(//zzz)", WantNum: num(0), Need: needAgg},
	{Name: "sum", Doc: "library", Query: "sum(//price)", WantNum: num(50), Need: needAgg},
	{Name: "count-in-pred", Doc: "tree", Query: "//a[count(b) = 2]", WantIDs: []string{"a1"}, Need: needAgg},
	{Name: "boolean-conv", Doc: "library", Query: "boolean(//note)", WantBool: boolean(true)},
	{Name: "boolean-conv-empty", Doc: "library", Query: "boolean(//zzz)", WantBool: boolean(false)},
	{Name: "string-value", Doc: "library", Query: "string(//title)", WantStr: str("Dune"), Need: needConv},
	{Name: "concat", Doc: "library", Query: "concat('a', 'b')", WantStr: str("ab"), Need: needStr},
	{Name: "contains-pred", Doc: "library", Query: "//book[contains(title, 'un')]", WantIDs: []string{"b1"}, Need: needStr},
	{Name: "starts-with-pred", Doc: "library", Query: "//book[starts-with(title, 'P')]", WantIDs: []string{"b2"}, Need: needStr},
	{Name: "string-length", Doc: "library", Query: "string-length(string(//title))", WantNum: num(4), Need: needConvArith},
	{Name: "number-conv", Doc: "library", Query: "number(string(//price))", WantNum: num(12), Need: needConvArith},
	{Name: "name-fn", Doc: "tree", CtxID: "b1", Query: "name()", WantStr: str("b"), Need: needConv},
	{Name: "normalize", Doc: "library", Query: "normalize-space('  a  b ')", WantStr: str("a b"), Need: needConv},
	{Name: "true-false", Doc: "library", Query: "true() and not(false())", WantBool: boolean(true), Need: needNeg},

	// --- mixed / tricky ---
	{Name: "pred-on-mid-step", Doc: "tree", Query: "/r/a[b/c]/b", WantIDs: []string{"b1", "b2"}},
	{Name: "last-on-reverse", Doc: "tree", CtxID: "c2", Query: "ancestor::*[last()]", WantIDs: []string{"r"}, Need: needPos},
	{Name: "pos-neq", Doc: "library", Query: "//book[position() != 2]", WantIDs: []string{"b1", "b3"}, Need: needPos},
	{Name: "not-pos", Doc: "library", Query: "//book[not(position() = 2)]", WantIDs: []string{"b1", "b3"}, Need: needNegPosIter},
	{Name: "complex-combo", Doc: "library",
		Query:   "//book[@year = 2001 and (note or starts-with(title, 'P'))]",
		WantIDs: []string{"b2", "b3"}, Need: Caps{Arithmetic: true, Strings: true}},
	{Name: "union-in-pred", Doc: "library", Query: "//book[note | journal]", WantIDs: []string{"b3"}},
	{Name: "double-slash-mid", Doc: "tree", Query: "/r//b", WantIDs: []string{"b1", "b2", "b3"}},
	{Name: "dslash-self", Doc: "tree", CtxID: "b1", Query: ".//c", WantIDs: []string{"c1", "c2"}},
}

// Run executes every conformance case the engine's capabilities allow.
func Run(t *testing.T, engine Engine, caps Caps) {
	t.Helper()
	for _, tc := range Cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			if skip, why := needsMissing(tc.Need, caps); skip {
				t.Skipf("engine lacks %s", why)
			}
			RunCase(t, engine, tc)
		})
	}
}

func needsMissing(need, have Caps) (bool, string) {
	switch {
	case need.Arithmetic && !have.Arithmetic:
		return true, "arithmetic"
	case need.Positional && !have.Positional:
		return true, "position()/last()"
	case need.Strings && !have.Strings:
		return true, "strings"
	case need.Negation && !have.Negation:
		return true, "negation"
	case need.IteratedPredicates && !have.IteratedPredicates:
		return true, "iterated predicates"
	case need.Aggregates && !have.Aggregates:
		return true, "aggregates"
	case need.Conversions && !have.Conversions:
		return true, "conversion functions"
	case need.BooleanRelOp && !have.BooleanRelOp:
		return true, "relational operators on booleans"
	default:
		return false, ""
	}
}

// RunCase executes a single conformance case against an engine.
func RunCase(t *testing.T, engine Engine, tc Case) {
	t.Helper()
	RunCaseDoc(t, engine, tc, MustDoc(tc.Doc))
}

// RunCaseDoc executes a single conformance case against an engine on a
// caller-supplied parse of the case's corpus document — the seam the
// per-backend conformance matrix uses to run the same cases over
// documents held in different storage backends.
func RunCaseDoc(t *testing.T, engine Engine, tc Case, doc *xmltree.Document) {
	t.Helper()
	ctx := evalctx.Root(doc)
	if tc.CtxID != "" {
		n := NodeByID(doc, tc.CtxID)
		if n == nil {
			t.Fatalf("case %s: no node with id %q", tc.Name, tc.CtxID)
		}
		ctx = evalctx.At(n)
	}
	expr, err := parser.Parse(tc.Query)
	if err != nil {
		t.Fatalf("case %s: parse: %v", tc.Name, err)
	}
	got, err := engine(expr, ctx)
	if err != nil {
		t.Fatalf("case %s: eval: %v", tc.Name, err)
	}
	if err := CheckExpected(doc, tc, got); err != nil {
		t.Errorf("case %s (query %s): %v", tc.Name, tc.Query, err)
	}
}

// CheckExpected compares an engine result against the case expectation.
func CheckExpected(doc *xmltree.Document, tc Case, got value.Value) error {
	switch {
	case tc.WantIDs != nil:
		ns, ok := got.(value.NodeSet)
		if !ok {
			return fmt.Errorf("got %s %v, want node-set", got.Kind(), got)
		}
		gotIDs := make([]string, len(ns))
		for i, n := range ns {
			id, _ := n.Attr("id")
			gotIDs[i] = id
		}
		if len(gotIDs) != len(tc.WantIDs) {
			return fmt.Errorf("got ids %v, want %v", gotIDs, tc.WantIDs)
		}
		for i := range gotIDs {
			if gotIDs[i] != tc.WantIDs[i] {
				return fmt.Errorf("got ids %v, want %v", gotIDs, tc.WantIDs)
			}
		}
	case tc.WantCount != nil:
		ns, ok := got.(value.NodeSet)
		if !ok {
			return fmt.Errorf("got %s, want node-set", got.Kind())
		}
		if len(ns) != *tc.WantCount {
			return fmt.Errorf("got %d nodes, want %d", len(ns), *tc.WantCount)
		}
	case tc.WantNum != nil:
		n, ok := got.(value.Number)
		if !ok {
			return fmt.Errorf("got %s %v, want number", got.Kind(), got)
		}
		if float64(n) != *tc.WantNum && !(math.IsNaN(float64(n)) && math.IsNaN(*tc.WantNum)) {
			return fmt.Errorf("got %v, want %v", float64(n), *tc.WantNum)
		}
	case tc.WantStr != nil:
		s, ok := got.(value.String)
		if !ok {
			return fmt.Errorf("got %s %v, want string", got.Kind(), got)
		}
		if string(s) != *tc.WantStr {
			return fmt.Errorf("got %q, want %q", s, *tc.WantStr)
		}
	case tc.WantBool != nil:
		b, ok := got.(value.Boolean)
		if !ok {
			return fmt.Errorf("got %s %v, want boolean", got.Kind(), got)
		}
		if bool(b) != *tc.WantBool {
			return fmt.Errorf("got %v, want %v", b, *tc.WantBool)
		}
	default:
		return fmt.Errorf("case has no expectation")
	}
	return nil
}

// MustDoc parses a corpus document by key, panicking on unknown keys.
func MustDoc(key string) *xmltree.Document {
	src, ok := Docs[key]
	if !ok {
		panic(fmt.Sprintf("enginetest: unknown doc %q", key))
	}
	d, err := xmltree.ParseString(src)
	if err != nil {
		panic(fmt.Sprintf("enginetest: doc %q: %v", key, err))
	}
	return d
}

// NodeByID finds the element with the given id attribute.
func NodeByID(d *xmltree.Document, id string) *xmltree.Node {
	for _, n := range d.Nodes {
		if n.Type == xmltree.ElementNode {
			if v, ok := n.Attr("id"); ok && v == id {
				return n
			}
		}
	}
	return nil
}
