package streaming

import (
	"errors"
	"math/rand"
	"testing"

	"xpathcomplexity/internal/eval/corelinear"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/parser"
)

func mustDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEvalTreeBasic(t *testing.T) {
	d := mustDoc(t, `<a><b><c/><c/></b><b><c><b/></c></b>text</a>`)
	cases := []struct {
		q    string
		want int
	}{
		{"/a", 1},
		{"/a/b", 2},
		{"/a/b/c", 3},
		{"//c", 3},
		{"//b//b", 1},
		{"/a/*", 2},
		{"//*", 7},
		{"//text()", 1},
		{"/z", 0},
	}
	for _, tc := range cases {
		ns, err := compile(t, tc.q).EvalTree(d, nil, nil)
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if len(ns) != tc.want {
			t.Errorf("EvalTree(%q) = %d nodes, want %d", tc.q, len(ns), tc.want)
		}
		// Matches are collected pre-order, which is document order.
		for i := 1; i < len(ns); i++ {
			if ns[i-1].Pre >= ns[i].Pre {
				t.Errorf("EvalTree(%q) out of document order at %d", tc.q, i)
			}
		}
	}
}

// EvalTree must agree with corelinear node-for-node (not just in count):
// it feeds EngineAuto's streaming stage, whose results must be
// indistinguishable from the tree engines'.
func TestEvalTreeAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 30, MaxFanout: 4, Tags: tags,
		})
		q := genDownward(rng, tags)
		expr, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("generated %q: %v", q, err)
		}
		prog, err := Compile(expr)
		if err != nil {
			continue
		}
		want, err := corelinear.Evaluate(expr, evalctx.Root(doc), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prog.EvalTree(doc, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.(value.NodeSet)) {
			t.Fatalf("disagreement on %q: streaming %d nodes, corelinear %d\ndoc: %s",
				q, len(got), len(want.(value.NodeSet)), doc.XMLString())
		}
	}
}

// EvalTree must be blind to the document storage backend: evaluating on
// a columnar-hydrated view must select exactly the ords it selects on
// the pointer tree (the backends share Ord numbering by construction).
func TestEvalTreeColumnarBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 100; trial++ {
		pd := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 40, MaxFanout: 4, Tags: tags, TextProb: 0.2, AttrProb: 0.2,
		})
		cd := xmltree.Compact(pd)
		q := genDownward(rng, tags)
		expr, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("generated %q: %v", q, err)
		}
		prog, err := Compile(expr)
		if err != nil {
			continue
		}
		want, err := prog.EvalTree(pd, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prog.EvalTree(cd, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("backend disagreement on %q: columnar %d nodes, pointer %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Ord != want[i].Ord {
				t.Fatalf("backend disagreement on %q at %d: ord %d vs %d", q, i, got[i].Ord, want[i].Ord)
			}
		}
	}
}

// EvalTree charges exactly one op per visited node, to counter and guard
// in lockstep.
func TestEvalTreeOpAccounting(t *testing.T) {
	d := mustDoc(t, `<a><b><c/></b><b/><d/></a>`)
	ctr := new(evalctx.Counter)
	g := evalctx.NewGuard(nil, evalctx.Limits{MaxOps: 1 << 40})
	ns, err := compile(t, "//b").EvalTree(d, ctr, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("count = %d", len(ns))
	}
	if ctr.Ops() != g.Ops() {
		t.Errorf("counter ops %d != guard ops %d", ctr.Ops(), g.Ops())
	}
	// //b prunes nothing below b... actually every element is visited
	// except those under pruned subtrees; here all 5 non-root elements are
	// visited (descendant steps stay armed everywhere).
	if ctr.Ops() != 5 {
		t.Errorf("ops = %d, want 5 (one per visited node)", ctr.Ops())
	}
}

func TestEvalTreeGuardLimits(t *testing.T) {
	d := mustDoc(t, `<a><b/><b/><b/><b/><b/></a>`)
	p := compile(t, "//b")

	_, err := p.EvalTree(d, nil, evalctx.NewGuard(nil, evalctx.Limits{MaxOps: 2}))
	if !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Errorf("tiny op budget: err = %v, want ErrBudgetExceeded", err)
	}

	_, err = p.EvalTree(d, nil, evalctx.NewGuard(nil, evalctx.Limits{MaxNodeSet: 3}))
	var be *evalctx.BudgetError
	if !errors.As(err, &be) || be.Limit != "node-set" {
		t.Errorf("match-cardinality cap: err = %v, want BudgetError{Limit: node-set}", err)
	}

	// The counter budget aborts the walk the same way.
	ctr := &evalctx.Counter{Budget: 2}
	if _, err := p.EvalTree(d, ctr, nil); !errors.Is(err, evalctx.ErrBudget) {
		t.Errorf("counter budget: err = %v, want ErrBudget", err)
	}
}

// Comment and processing-instruction children must transition the NFA the
// same way the tree engines' child axis sees them — node() matches them,
// name tests don't.
func TestEvalTreeCommentPI(t *testing.T) {
	d := mustDoc(t, `<a><!--x--><?pi data?><b/></a>`)
	for _, tc := range []struct {
		q    string
		want int
	}{
		{"/a/node()", 3},
		{"/a/b", 1},
		{"//*", 2},
	} {
		ns, err := compile(t, tc.q).EvalTree(d, nil, nil)
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if len(ns) != tc.want {
			t.Errorf("EvalTree(%q) = %d nodes, want %d", tc.q, len(ns), tc.want)
		}
	}
}
