package streaming

import (
	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// EvalTree runs the compiled program over an already-parsed document and
// returns the selected node set, in document order. It is the tree-backed
// twin of Run: the same NFA advanced by a pre-order DFS over the child
// tree, with a subtree pruned as soon as its active-state set has no
// armed steps left (the state fully determines every future transition).
// Unlike Run, which consumes decoder tokens, EvalTree sees exactly the
// nodes the tree engines see, so its results are byte-identical to cvt
// and corelinear on the downward PF fragment.
//
// One operation is charged per visited node — to ctr and g in lockstep —
// so op accounting is deterministic and an op-budget guard limit uses the
// same units as Counter.Budget. Both ctr and g may be nil.
func (p *Program) EvalTree(d *xmltree.Document, ctr *evalctx.Counter, g *evalctx.Guard) (value.NodeSet, error) {
	full := states(1) << uint(len(p.steps))
	armed := full - 1 // mask of the step bits (everything below the match bit)
	var out []*xmltree.Node
	var walk func(n *xmltree.Node, st states) error
	walk = func(n *xmltree.Node, st states) error {
		for _, c := range n.Children {
			if err := ctr.Step(1); err != nil {
				return err
			}
			if g != nil {
				if err := g.Step(1); err != nil {
					return err
				}
			}
			next := p.advanceNode(st, c)
			if next&full != 0 {
				out = append(out, c)
				if g != nil {
					if err := g.CheckNodeSet(len(out)); err != nil {
						return err
					}
				}
			}
			if next&armed != 0 && len(c.Children) > 0 {
				if err := walk(c, next); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(d.Root, 1); err != nil {
		return nil, err
	}
	return value.NewNodeSet(out...), nil
}

// advanceNode is advance for a tree node: the node test is evaluated with
// the same MatchTest predicate the tree engines use for the child axis,
// so comment and processing-instruction nodes (which the token-stream Run
// never surfaces) transition identically to cvt's selections.
func (p *Program) advanceNode(parent states, n *xmltree.Node) states {
	var next states
	for i, st := range p.steps {
		armed := parent&(1<<uint(i)) != 0
		if st.kind == descendantStep && armed {
			// A descendant step stays armed at every deeper level.
			next |= 1 << uint(i)
		}
		if !armed {
			continue
		}
		if axes.MatchTest(ast.AxisChild, n, st.test) {
			next |= 1 << uint(i+1)
		}
	}
	return next
}
