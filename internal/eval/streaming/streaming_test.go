package streaming

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xpathcomplexity/internal/eval/corelinear"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/parser"
)

func compile(t *testing.T, q string) *Program {
	t.Helper()
	p, err := Compile(parser.MustParse(q))
	if err != nil {
		t.Fatalf("Compile(%q): %v", q, err)
	}
	return p
}

func TestBasicCounts(t *testing.T) {
	doc := `<a><b><c/><c/></b><b><c><b/></c></b>text</a>`
	cases := []struct {
		q    string
		want int
	}{
		{"/a", 1},
		{"/a/b", 2},
		{"/a/b/c", 3},
		{"//c", 3},
		{"//b", 3},
		{"//b//b", 1},
		{"/a//c", 3},
		{"//c/b", 1},
		{"/descendant::b", 3},
		{"/a/descendant::c", 3},
		{"/a/*", 2},
		{"//*", 7},
		{"/a/text()", 1},
		{"//text()", 1},
		{"/z", 0},
		{"//z//c", 0},
	}
	for _, tc := range cases {
		p := compile(t, tc.q)
		got, err := p.Count(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("Count(%q) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestNotStreamable(t *testing.T) {
	for _, q := range []string{
		"a/b",             // relative
		"/a[b]",           // predicate
		"/a/parent::b",    // upward axis
		"/a/following::b", // sideways axis
		"//a/..",          // parent
		"/a/b | /a/c",     // union
		"count(//a)",      // not a path
		"/",               // bare root
		"/a//",            // trailing // cannot parse anyway
		"/a/ancestor::b",  // upward
		"/a/self::b",      // self with name test
		"/a/@x",           // attributes are not streamed
	} {
		expr, err := parser.Parse(q)
		if err != nil {
			continue // some are parse errors; that's fine
		}
		if _, err := Compile(expr); !errors.Is(err, ErrNotStreamable) {
			t.Errorf("Compile(%q) = %v, want ErrNotStreamable", q, err)
		}
	}
}

func TestMatchCallback(t *testing.T) {
	p := compile(t, "//b/c")
	var matches []Match
	n, err := p.Run(strings.NewReader(`<a><b><c/></b><b><d><c/></d><c/></b></a>`), func(m Match) {
		matches = append(matches, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(matches) != 2 {
		t.Fatalf("n=%d matches=%v", n, matches)
	}
	for _, m := range matches {
		if m.Name != "c" || m.Depth != 3 {
			t.Errorf("match %+v, want c at depth 3", m)
		}
	}
}

// genDownward produces random downward PF queries.
func genDownward(rng *rand.Rand, tags []string) string {
	var b strings.Builder
	steps := 1 + rng.Intn(4)
	for i := 0; i < steps; i++ {
		switch rng.Intn(3) {
		case 0:
			b.WriteString("/")
		case 1:
			b.WriteString("//")
		default:
			b.WriteString("/descendant::")
			b.WriteString(pick(rng, tags))
			continue
		}
		if rng.Intn(5) == 0 {
			b.WriteString("*")
		} else {
			b.WriteString(pick(rng, tags))
		}
	}
	return b.String()
}

func pick(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }

// The streaming engine agrees with the tree-based linear engine on random
// documents and random downward queries — while never building a tree.
func TestAgreementWithCorelinear(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 400; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 30, MaxFanout: 4, Tags: tags,
		})
		q := genDownward(rng, tags)
		expr, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("generated %q: %v", q, err)
		}
		prog, err := Compile(expr)
		if err != nil {
			continue // e.g. "/descendant::a" after "//": fused forms are fine, others skipped
		}
		want, err := corelinear.Evaluate(expr, evalctx.Root(doc), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prog.Count(strings.NewReader(doc.XMLString()))
		if err != nil {
			t.Fatal(err)
		}
		if got != len(want.(value.NodeSet)) {
			t.Fatalf("disagreement on %q: streaming %d, corelinear %d\ndoc: %s",
				q, got, len(want.(value.NodeSet)), doc.XMLString())
		}
	}
}

// Memory story: the active-state stack never exceeds the document depth.
func TestStackBoundedByDepth(t *testing.T) {
	depth := 200
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("<hit/>")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	p := compile(t, "//a/hit")
	n, err := p.Count(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d", n)
	}
}

// Huge flat documents stream without issue (the engine is O(1) memory per
// sibling).
func TestWideStreaming(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&b, "<item><v>%d</v></item>", i)
	}
	b.WriteString("</r>")
	p := compile(t, "/r/item/v")
	n, err := p.Count(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 50_000 {
		t.Fatalf("count = %d", n)
	}
}

func TestStepLimit(t *testing.T) {
	q := "/" + strings.Repeat("a/", 70) + "a"
	_, err := Compile(parser.MustParse(q))
	if err == nil {
		t.Fatal("64+ step query should be rejected")
	}
	// The rejection is a capacity limit of this NFA encoding, not a
	// fragment violation — but callers doing errors.Is(err,
	// ErrNotStreamable) fallback must still catch it, or a 64-step PF
	// query would abort instead of falling through to a tree engine.
	if !errors.Is(err, ErrNotStreamable) {
		t.Errorf("step-limit rejection = %v, want errors.Is ErrNotStreamable", err)
	}
	// 63 steps still fits (63 step bits + 1 match bit in a uint64).
	q63 := "/" + strings.Repeat("a/", 62) + "a"
	if _, err := Compile(parser.MustParse(q63)); err != nil {
		t.Errorf("63-step query should compile: %v", err)
	}
}

func TestSourceRoundTrip(t *testing.T) {
	p := compile(t, "//a/b")
	if !strings.Contains(p.Source(), "descendant-or-self") {
		t.Errorf("Source() = %q", p.Source())
	}
}
