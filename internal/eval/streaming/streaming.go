// Package streaming implements a single-pass, constant-memory-per-depth
// evaluator for the downward fragment of PF: absolute location paths over
// the child and descendant(-or-self) axes with name, '*', text() and
// node() tests, and no predicates.
//
// The paper places PF in NL — evaluation needs only logarithmic *space* —
// and this engine is the practical face of that observation: it never
// materializes the document tree. The query compiles to a tiny NFA whose
// active-state sets (one bitset per open element) live on a stack of
// depth equal to the document's nesting depth, so memory is
// O(depth · |Q|/64) words regardless of document size. Matches are
// reported as they stream past.
//
// Downward-only is a real restriction (upward and sideways axes need
// either buffering or multiple passes); the engine rejects anything else
// with ErrNotStreamable. Agreement with the tree-based engines is tested
// on randomized documents and queries.
package streaming

import (
	"errors"
	"fmt"
	"io"

	"encoding/xml"

	"xpathcomplexity/internal/xpath/ast"
)

// ErrNotStreamable reports that a query lies outside the downward PF
// fragment this engine supports.
var ErrNotStreamable = errors.New("query is not downward PF (streaming needs absolute, predicate-free child/descendant paths)")

// maxSteps bounds the NFA size (one bit per step).
const maxSteps = 63

// stepKind distinguishes one-level from closure steps.
type stepKind int

const (
	childStep      stepKind = iota // consume exactly one level
	descendantStep                 // consume one level at any deeper depth
)

// step is one compiled NFA transition.
type step struct {
	kind stepKind
	test ast.NodeTest
}

// Program is a compiled streaming query.
type Program struct {
	steps []step
	// matchText is true when the final step's test selects text nodes.
	matchText bool
	source    string
}

// Compile translates a parsed query into a streaming program. The query
// must be an absolute path whose steps use only child, descendant and
// descendant-or-self axes, without predicates. The '//' desugaring
// (descendant-or-self::node()/child::t) is recognized and fused into a
// descendant step.
func Compile(expr ast.Expr) (*Program, error) {
	p, ok := expr.(*ast.Path)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrNotStreamable, expr)
	}
	if !p.Absolute {
		return nil, fmt.Errorf("%w: relative path", ErrNotStreamable)
	}
	prog := &Program{source: p.String()}
	pending := childStep
	for _, s := range p.Steps {
		if len(s.Preds) > 0 {
			return nil, fmt.Errorf("%w: predicates", ErrNotStreamable)
		}
		switch s.Axis {
		case ast.AxisChild:
			// Keep 'pending' (child or descendant from a preceding //).
		case ast.AxisDescendantOrSelf:
			if s.Test.Kind == ast.TestNode {
				// The '//' shape: arm the next step as a descendant
				// step. A trailing //node() matches like descendant-or-
				// self; approximate by a descendant step on node() when
				// final.
				if pending == childStep {
					pending = descendantStep
					continue
				}
				continue // // // collapses
			}
			return nil, fmt.Errorf("%w: descendant-or-self with a node test", ErrNotStreamable)
		case ast.AxisDescendant:
			pending = descendantStep
		case ast.AxisSelf:
			if s.Test.Kind == ast.TestNode {
				continue // self::node() is the identity
			}
			return nil, fmt.Errorf("%w: self with a node test", ErrNotStreamable)
		default:
			return nil, fmt.Errorf("%w: axis %v", ErrNotStreamable, s.Axis)
		}
		if len(prog.steps) >= maxSteps {
			// Wrap ErrNotStreamable like every other rejection, so
			// errors.Is-based fallback treats an oversized query as
			// "outside the fragment", not as a fatal evaluation error.
			return nil, fmt.Errorf("%w: query exceeds %d steps", ErrNotStreamable, maxSteps)
		}
		prog.steps = append(prog.steps, step{kind: pending, test: s.Test})
		pending = childStep
	}
	if pending == descendantStep {
		return nil, fmt.Errorf("%w: trailing '//'", ErrNotStreamable)
	}
	if len(prog.steps) == 0 {
		return nil, fmt.Errorf("%w: bare '/'", ErrNotStreamable)
	}
	last := prog.steps[len(prog.steps)-1].test
	prog.matchText = last.Kind == ast.TestText
	return prog, nil
}

// Match is one streamed hit.
type Match struct {
	// Depth is the element nesting depth (document element = 1).
	Depth int
	// Name is the element tag ("" for text matches).
	Name string
	// Text is the character data for text() matches.
	Text string
}

// states is the NFA active set: bit i set means steps[0..i-1] have been
// matched along the current path, so step i is armed. Bit len(steps)
// means "full match at this node".
type states uint64

// Run streams the document from r, invoking emit for every match, and
// returns the match count. Memory is bounded by the element nesting
// depth.
func (p *Program) Run(r io.Reader, emit func(Match)) (int, error) {
	dec := xml.NewDecoder(r)
	count := 0
	// stack[d] = active states at depth d; depth 0 = virtual root with
	// step 0 armed.
	stack := []states{1}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, fmt.Errorf("streaming: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			parent := stack[len(stack)-1]
			next := p.advance(parent, t.Name.Local, false)
			if next&(1<<uint(len(p.steps))) != 0 && !p.matchText {
				count++
				if emit != nil {
					emit(Match{Depth: len(stack), Name: t.Name.Local})
				}
			}
			stack = append(stack, next)
		case xml.EndElement:
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			if !p.matchText {
				continue
			}
			parent := stack[len(stack)-1]
			next := p.advance(parent, "", true)
			if next&(1<<uint(len(p.steps))) != 0 {
				count++
				if emit != nil {
					emit(Match{Depth: len(stack), Text: string(t)})
				}
			}
		}
	}
	return count, nil
}

// advance computes the child active set from a parent active set for a
// node with the given name (or a text node).
func (p *Program) advance(parent states, name string, isText bool) states {
	var next states
	for i, st := range p.steps {
		armed := parent&(1<<uint(i)) != 0
		if st.kind == descendantStep {
			// A descendant step stays armed at every deeper level.
			if armed {
				next |= 1 << uint(i)
			}
		}
		if !armed {
			continue
		}
		if p.stepMatches(st, name, isText) {
			next |= 1 << uint(i+1)
		}
	}
	// A full match also persists for descendant-armed suffixes? No: the
	// final bit is consumed per node; matches are reported immediately.
	return next
}

func (p *Program) stepMatches(st step, name string, isText bool) bool {
	switch st.test.Kind {
	case ast.TestName:
		return !isText && st.test.Name == name
	case ast.TestStar:
		return !isText
	case ast.TestText:
		return isText
	case ast.TestNode:
		return true
	default:
		return false
	}
}

// Count runs the program and returns only the number of matches.
func (p *Program) Count(r io.Reader) (int, error) { return p.Run(r, nil) }

// Source returns the canonical query text the program was compiled from.
func (p *Program) Source() string { return p.source }
