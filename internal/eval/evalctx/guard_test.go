package evalctx

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGuardIsInert(t *testing.T) {
	var g *Guard
	if err := g.Check(); err != nil {
		t.Errorf("nil.Check() = %v", err)
	}
	if err := g.Step(1 << 40); err != nil {
		t.Errorf("nil.Step() = %v", err)
	}
	if err := g.Enter(); err != nil {
		t.Errorf("nil.Enter() = %v", err)
	}
	g.Exit()
	if err := g.CheckNodeSet(1 << 30); err != nil {
		t.Errorf("nil.CheckNodeSet() = %v", err)
	}
	if g.Ops() != 0 || g.Depth() != 0 {
		t.Errorf("nil guard reports ops=%d depth=%d", g.Ops(), g.Depth())
	}
	if g.Context() == nil {
		t.Error("nil.Context() should be context.Background, not nil")
	}
}

func TestNewGuardNilCases(t *testing.T) {
	if g := NewGuard(nil, Limits{}); g != nil {
		t.Error("NewGuard(nil, zero limits) should be nil (no governance)")
	}
	g := NewGuard(nil, Limits{MaxOps: 10})
	if g == nil {
		t.Fatal("NewGuard(nil, limits) should build a guard")
	}
	if g.Context() == nil || g.Context().Err() != nil {
		t.Error("limits-only guard should run on a live background context")
	}
	if g2 := NewGuard(context.Background(), Limits{}); g2 == nil {
		t.Error("NewGuard(ctx, zero limits) should build a cancellation-only guard")
	}
}

func TestGuardOpsBudget(t *testing.T) {
	g := NewGuard(nil, Limits{MaxOps: 100})
	if err := g.Step(100); err != nil {
		t.Fatalf("Step to exactly the limit should pass: %v", err)
	}
	err := g.Step(1)
	if err == nil {
		t.Fatal("Step past MaxOps should fail")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("ops error should match ErrBudgetExceeded: %v", err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Errorf("ops error should match legacy ErrBudget: %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "ops" || be.Max != 100 || be.Used != 101 {
		t.Errorf("unexpected BudgetError: %+v", be)
	}
	if g.Ops() != 101 {
		t.Errorf("Ops() = %d, want 101", g.Ops())
	}
}

func TestGuardDepthLimitAndRollback(t *testing.T) {
	g := NewGuard(nil, Limits{MaxDepth: 3})
	for i := 0; i < 3; i++ {
		if err := g.Enter(); err != nil {
			t.Fatalf("Enter %d: %v", i, err)
		}
	}
	err := g.Enter()
	if err == nil {
		t.Fatal("fourth Enter should exceed MaxDepth=3")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "depth" {
		t.Errorf("depth error = %v, want BudgetError{Limit: depth}", err)
	}
	// The failed Enter must roll its increment back: the caller never
	// pairs a failed Enter with Exit.
	if g.Depth() != 3 {
		t.Errorf("Depth() after failed Enter = %d, want 3", g.Depth())
	}
	g.Exit()
	g.Exit()
	g.Exit()
	if g.Depth() != 0 {
		t.Errorf("Depth() after unwinding = %d, want 0", g.Depth())
	}
	if err := g.Enter(); err != nil {
		t.Errorf("Enter after unwind should pass: %v", err)
	}
}

func TestGuardCancellationPollCadence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGuard(ctx, Limits{})
	if err := g.Step(1); err != nil {
		t.Fatalf("Step on live context: %v", err)
	}
	cancel()
	// The context is polled every guardPollOps charged operations, so at
	// most ~2*guardPollOps single-op steps pass before the cancel lands.
	var err error
	for i := 0; i < 2*guardPollOps; i++ {
		if err = g.Step(1); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("cancelation never observed within poll cadence")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("cancel error should match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancel error should unwrap to context.Canceled: %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Error("cancel error must not match ErrBudgetExceeded")
	}
	// Check bypasses the cadence entirely.
	if err := g.Check(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Check() on canceled context = %v, want ErrCanceled", err)
	}
}

func TestGuardDeadlineErrorShape(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := NewGuard(ctx, Limits{}).Check()
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("deadline error should match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline error should unwrap to context.DeadlineExceeded: %v", err)
	}
}

func TestGuardCheckNodeSet(t *testing.T) {
	g := NewGuard(nil, Limits{MaxNodeSet: 10})
	if err := g.CheckNodeSet(10); err != nil {
		t.Errorf("cardinality at the limit should pass: %v", err)
	}
	err := g.CheckNodeSet(11)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "node-set" || be.Used != 11 {
		t.Errorf("CheckNodeSet(11) = %v, want BudgetError{Limit: node-set}", err)
	}
	// Unlimited guard never trips.
	if err := NewGuard(context.Background(), Limits{}).CheckNodeSet(1 << 30); err != nil {
		t.Errorf("unlimited CheckNodeSet = %v", err)
	}
}

func TestIsResourceError(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&CancelError{Cause: context.Canceled}, true},
		{&CancelError{Cause: context.DeadlineExceeded}, true},
		{&BudgetError{Limit: "ops"}, true},
		{ErrBudget, true},
		{errors.New("unsupported expression"), false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := IsResourceError(tc.err); got != tc.want {
			t.Errorf("IsResourceError(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestGuardCancellationBeatsBudget pins the error-precedence contract:
// when the context is already dead at the moment a resource limit
// trips, the guard reports the cancellation, not the budget. The poll
// cadence makes the race real — a limit can exceed between polls while
// a cancel is pending — and under EvalBatch a shared canceled context
// must never surface as per-query budget exhaustion.
func TestGuardCancellationBeatsBudget(t *testing.T) {
	newDead := func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}

	t.Run("step", func(t *testing.T) {
		g := NewGuard(newDead(), Limits{MaxOps: 1})
		err := g.Step(5) // trips MaxOps on a dead context
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Step over budget on canceled context = %v, want ErrCanceled", err)
		}
		if errors.Is(err, ErrBudgetExceeded) {
			t.Error("error must not also match ErrBudgetExceeded")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error should unwrap to context.Canceled: %v", err)
		}
	})

	t.Run("enter", func(t *testing.T) {
		g := NewGuard(newDead(), Limits{MaxDepth: 1})
		if err := g.Enter(); err != nil {
			t.Fatalf("first Enter: %v", err)
		}
		err := g.Enter() // trips MaxDepth on a dead context
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Enter over depth on canceled context = %v, want ErrCanceled", err)
		}
		if got := g.Depth(); got != 1 {
			t.Errorf("depth after rejected Enter = %d, want 1 (rollback)", got)
		}
	})

	t.Run("node-set", func(t *testing.T) {
		g := NewGuard(newDead(), Limits{MaxNodeSet: 1})
		err := g.CheckNodeSet(2)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("CheckNodeSet over limit on canceled context = %v, want ErrCanceled", err)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
		defer cancel()
		<-ctx.Done()
		err := NewGuard(ctx, Limits{MaxOps: 1}).Step(5)
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Step over budget past deadline = %v, want ErrCanceled unwrapping to DeadlineExceeded", err)
		}
	})

	// A live context keeps the budget verdict untouched.
	t.Run("live-context-still-budget", func(t *testing.T) {
		g := NewGuard(context.Background(), Limits{MaxOps: 1})
		err := g.Step(5)
		var be *BudgetError
		if !errors.As(err, &be) || be.Limit != "ops" {
			t.Fatalf("Step over budget on live context = %v, want BudgetError{ops}", err)
		}
	})
}
