// Package evalctx defines the types shared by all five evaluators: the
// evaluation context triple of XPath 1.0 (context node, context position,
// context size), evaluation errors, and the operation counter with which
// the experiment harness measures work in machine-independent units.
package evalctx

import (
	"errors"
	"fmt"
	"sync/atomic"

	"xpathcomplexity/internal/xmltree"
)

// Context is the XPath 1.0 evaluation context: a context node and the two
// integers context position and context size (§1 of the recommendation,
// §2.2 of the paper). Pos and Size satisfy 1 ≤ Pos ≤ Size except in the
// initial context of a query evaluated against a bare node, where both
// are 1.
type Context struct {
	Node *xmltree.Node
	Pos  int
	Size int
}

// Root returns the canonical initial context for evaluating a query
// against a document: the conceptual root with position and size 1.
func Root(d *xmltree.Document) Context {
	return Context{Node: d.Root, Pos: 1, Size: 1}
}

// At returns a context focused on n with position and size 1, the
// convention for evaluating a query "at" a node.
func At(n *xmltree.Node) Context {
	return Context{Node: n, Pos: 1, Size: 1}
}

// String renders the context for error messages.
func (c Context) String() string {
	name := "<nil>"
	if c.Node != nil {
		name = fmt.Sprintf("#%d(%s)", c.Node.Ord, c.Node.Type)
	}
	return fmt.Sprintf("(%s, %d, %d)", name, c.Pos, c.Size)
}

// ErrBudget is returned when an evaluator exceeds its operation budget;
// the benchmark harness uses budgets to cut off the exponential baseline
// without hanging the suite.
var ErrBudget = errors.New("evaluation operation budget exceeded")

// Counter counts elementary evaluator operations. All evaluators bump the
// counter once per (subexpression, context) visit, giving a
// machine-independent work measure for the complexity experiments
// (EXPERIMENTS.md). A nil *Counter is valid and counts nothing.
//
// The operation count is kept atomically, so one counter may be shared
// by concurrent evaluations (EvalBatch workers, the parallel engine).
// Budget is a plain field read during evaluation: set it before handing
// the counter to any evaluator and leave it fixed until they finish.
type Counter struct {
	ops atomic.Int64
	// Budget, when positive, bounds Ops; exceeding it aborts evaluation
	// with ErrBudget.
	Budget int64
}

// Step adds n operations and reports whether the budget (if any) is
// exhausted.
func (c *Counter) Step(n int64) error {
	if c == nil {
		return nil
	}
	total := c.ops.Add(n)
	if c.Budget > 0 && total > c.Budget {
		return ErrBudget
	}
	return nil
}

// Add adds n operations without a budget check; evaluators use it to
// fold privately accumulated counts back into a shared counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.ops.Add(n)
	}
}

// Ops returns the number of elementary operations performed so far.
func (c *Counter) Ops() int64 {
	if c == nil {
		return 0
	}
	return c.ops.Load()
}

// TypeError reports an XPath type mismatch (e.g. count() of a number).
type TypeError struct {
	Op   string
	Want string
	Got  string
}

// Error implements the error interface.
func (e *TypeError) Error() string {
	return fmt.Sprintf("xpath: type error in %s: want %s, got %s", e.Op, e.Want, e.Got)
}
