package evalctx

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrCanceled reports that an evaluation was stopped by its
// context.Context — either an explicit cancel or an expired deadline.
// Guard-issued cancellation errors match it with errors.Is; the concrete
// error is a *CancelError wrapping the context's own error, so
// errors.Is(err, context.DeadlineExceeded) distinguishes deadlines from
// cancels when callers care.
var ErrCanceled = errors.New("evaluation canceled")

// ErrBudgetExceeded reports that an evaluation hit one of its Guard
// resource limits (operations, recursion depth, or node-set
// cardinality). The concrete error is a *BudgetError naming the limit.
var ErrBudgetExceeded = errors.New("evaluation resource limit exceeded")

// CancelError is the concrete cancellation error: it matches ErrCanceled
// with errors.Is and unwraps to the context's error (context.Canceled or
// context.DeadlineExceeded).
type CancelError struct {
	// Cause is the context error that stopped the evaluation.
	Cause error
}

// Error implements the error interface.
func (e *CancelError) Error() string {
	if e.Cause != nil {
		return "evaluation canceled: " + e.Cause.Error()
	}
	return "evaluation canceled"
}

// Unwrap exposes the context error for errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// BudgetError is the concrete resource-limit error, naming which Guard
// limit was exceeded. It matches both ErrBudgetExceeded and the legacy
// Counter sentinel ErrBudget with errors.Is, so existing budget-excuse
// checks keep working when callers move from Counter.Budget to Guard
// limits.
type BudgetError struct {
	// Limit names the exceeded limit: "ops", "depth" or "node-set".
	Limit string
	// Max is the configured bound; Used is the value that exceeded it.
	Max, Used int64
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("evaluation %s limit exceeded: %d > %d", e.Limit, e.Used, e.Max)
}

// Is matches ErrBudgetExceeded and the legacy ErrBudget sentinel.
func (e *BudgetError) Is(target error) bool {
	return target == ErrBudgetExceeded || target == ErrBudget
}

// IsResourceError reports whether err is a guard or counter verdict —
// cancellation, deadline, or any budget limit — as opposed to a semantic
// evaluation error. Engine-selection fallback must not retry on these:
// the user asked for the evaluation to stop.
func IsResourceError(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrBudget)
}

// Limits bound one guarded evaluation. Zero values disable the
// corresponding check.
type Limits struct {
	// MaxOps bounds elementary operations, in the same units as
	// Counter.Budget (the engines charge both in lockstep).
	MaxOps int64
	// MaxDepth bounds evaluator recursion depth (Enter/Exit pairs).
	MaxDepth int64
	// MaxNodeSet bounds the cardinality of intermediate node bags and
	// frontier lists at the points where they can grow past |D| (the
	// naive engine's bags) or are materialized per node (sparse
	// frontiers, streamed matches). Dense bitset frontiers are O(|D|)
	// by construction and are not counted.
	MaxNodeSet int
}

// guardPollOps is the operation cadence at which the guard polls its
// context: frequent enough that cancellation is prompt (well under a
// millisecond of engine work), rare enough that ctx.Err is off the hot
// path.
const guardPollOps = 256

// Guard enforces cooperative resource governance inside the evaluators:
// a context for cancellation and deadlines, an operation budget, a
// recursion-depth bound and a node-set cardinality bound. The engines
// consult it at the same per-visit points the Counter and the
// observability layer already instrument, so a nil *Guard — the default
// — costs one pointer check per site.
//
// All state is atomic: one Guard may be shared by the goroutines of a
// single evaluation (the parallel engine). Guards are single-use; build
// a fresh one per evaluation.
type Guard struct {
	ctx       context.Context
	limits    Limits
	ops       atomic.Int64
	depth     atomic.Int64
	sincePoll atomic.Int64
}

// NewGuard builds a guard from a context and limits. A nil ctx with zero
// limits yields a nil guard (no governance); a nil ctx with limits set
// uses context.Background.
func NewGuard(ctx context.Context, l Limits) *Guard {
	if ctx == nil && l == (Limits{}) {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Guard{ctx: ctx, limits: l}
}

// Context returns the guard's context (context.Background for a nil
// guard).
func (g *Guard) Context() context.Context {
	if g == nil {
		return context.Background()
	}
	return g.ctx
}

// Ops returns the operations charged to the guard so far.
func (g *Guard) Ops() int64 {
	if g == nil {
		return 0
	}
	return g.ops.Load()
}

// Check polls the context immediately, bypassing the cadence. Evaluation
// entry points call it once so an already-canceled context fails before
// any work happens.
func (g *Guard) Check() error {
	if g == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		return &CancelError{Cause: err}
	}
	return nil
}

// canceledOr resolves the precedence between a dead context and a
// tripped resource limit: cancellation wins. The context polls on a
// 256-op cadence, so a limit can trip while a cancel (or an expired
// batch deadline) is already pending; reporting the BudgetError then
// misattributes the stop to the query's own budget — under EvalBatch a
// canceled shared context would surface as per-query budget exhaustion.
// Every limit-error path routes through here so the verdict matches the
// actual cause.
func (g *Guard) canceledOr(budget error) error {
	if err := g.ctx.Err(); err != nil {
		return &CancelError{Cause: err}
	}
	return budget
}

// Step charges n operations against the budget and polls the context
// every guardPollOps operations. Engines call it wherever they charge
// the Counter, with the same n, so MaxOps and Counter.Budget are
// denominated identically.
func (g *Guard) Step(n int64) error {
	if g == nil {
		return nil
	}
	ops := g.ops.Add(n)
	if g.limits.MaxOps > 0 && ops > g.limits.MaxOps {
		return g.canceledOr(&BudgetError{Limit: "ops", Max: g.limits.MaxOps, Used: ops})
	}
	if g.sincePoll.Add(n) >= guardPollOps {
		g.sincePoll.Store(0)
		if err := g.ctx.Err(); err != nil {
			return &CancelError{Cause: err}
		}
	}
	return nil
}

// Enter records one level of evaluator recursion and checks the depth
// limit and (at the poll cadence) the context. On success the caller
// must pair it with Exit; on error the depth increment is rolled back,
// so an early return without Exit stays balanced.
func (g *Guard) Enter() error {
	if g == nil {
		return nil
	}
	d := g.depth.Add(1)
	if g.limits.MaxDepth > 0 && d > g.limits.MaxDepth {
		g.depth.Add(-1)
		return g.canceledOr(&BudgetError{Limit: "depth", Max: g.limits.MaxDepth, Used: d})
	}
	if g.sincePoll.Add(1) >= guardPollOps {
		g.sincePoll.Store(0)
		if err := g.ctx.Err(); err != nil {
			g.depth.Add(-1)
			return &CancelError{Cause: err}
		}
	}
	return nil
}

// Exit unwinds one Enter.
func (g *Guard) Exit() {
	if g != nil {
		g.depth.Add(-1)
	}
}

// Depth returns the current recursion depth.
func (g *Guard) Depth() int64 {
	if g == nil {
		return 0
	}
	return g.depth.Load()
}

// CheckNodeSet verifies an intermediate node-collection cardinality
// against the MaxNodeSet limit.
func (g *Guard) CheckNodeSet(card int) error {
	if g == nil {
		return nil
	}
	if g.limits.MaxNodeSet > 0 && card > g.limits.MaxNodeSet {
		return g.canceledOr(&BudgetError{Limit: "node-set", Max: int64(g.limits.MaxNodeSet), Used: int64(card)})
	}
	return nil
}
