package cvt

import (
	"math/rand"
	"testing"

	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/eval/naive"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

func engine(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	return Evaluate(expr, ctx, nil)
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, engine, enginetest.FullCaps)
}

func TestCachedEquivalence(t *testing.T) {
	enginetest.RunCachedEquivalence(t, "cvt", engine, enginetest.FullCaps, enginetest.GenFull)
}

func TestConformanceColumnarBackend(t *testing.T) {
	enginetest.RunBackend(t, engine, enginetest.FullCaps, xmltree.BackendColumnar)
}

func TestBackendEquivalence(t *testing.T) {
	enginetest.RunBackendEquivalence(t, "cvt", engine, enginetest.FullCaps, enginetest.GenFull)
}

func TestConformanceWithoutAdaptiveKeys(t *testing.T) {
	enginetest.Run(t, func(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
		return EvaluateOptions(expr, ctx, Options{DisableAdaptiveKeys: true})
	}, enginetest.FullCaps)
}

// The defining property: on the parent/child oscillation query where the
// naive engine is exponential, cvt stays polynomial (here: essentially
// linear in query length, since tables are reused across steps).
func TestPolynomialOnOscillation(t *testing.T) {
	d, err := xmltree.ParseString("<a><b/><b/><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	query := "//b"
	var ops []int64
	for i := 0; i < 8; i++ {
		ctr := &evalctx.Counter{}
		v, err := Evaluate(parser.MustParse(query), evalctx.Root(d), ctr)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.(value.NodeSet)) != 3 {
			t.Fatalf("wrong result size %d", len(v.(value.NodeSet)))
		}
		ops = append(ops, ctr.Ops())
		query += "/parent::a/b"
	}
	// Growth per added step pair must be bounded by a constant increment
	// (linear), far from the ×3 of the naive engine.
	for i := 2; i < len(ops); i++ {
		d1 := ops[i] - ops[i-1]
		d0 := ops[i-1] - ops[i-2]
		if d1 > 2*d0+16 {
			t.Fatalf("op growth looks superlinear: %v", ops)
		}
	}
}

// Agreement: cvt must compute exactly what naive computes on the whole
// conformance corpus plus randomly generated queries over random docs.
func TestAgreementWithNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gen := enginetest.NewQueryGen(rng, enginetest.GenFull)
	for trial := 0; trial < 300; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 20, MaxFanout: 3, Tags: []string{"a", "b", "c"}, TextProb: 0.3, AttrProb: 0.2,
		})
		q := gen.Query()
		expr, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", q, err)
		}
		ctx := evalctx.Root(doc)
		want, err1 := naive.Evaluate(expr, ctx, &evalctx.Counter{Budget: 2_000_000})
		got, err2 := Evaluate(expr, ctx, nil)
		if err1 != nil {
			continue // budget exceeded on pathological generated query
		}
		if err2 != nil {
			t.Fatalf("cvt failed where naive succeeded on %q: %v", q, err2)
		}
		if !value.Equal(want, got) {
			t.Fatalf("disagreement on %q:\n naive: %v\n cvt:   %v\n doc: %s",
				q, want, got, doc.XMLString())
		}
	}
}

func TestTableStats(t *testing.T) {
	d, err := xmltree.ParseString("<a><b/><b/><c><b/></c></a>")
	if err != nil {
		t.Fatal(err)
	}
	expr := parser.MustParse("//b[following-sibling::b or parent::c]")
	_, st, err := EvaluateWithStats(expr, evalctx.Root(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tables == 0 || st.Entries == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	// Position-insensitive subexpressions keyed by node only: entries are
	// bounded by |subexprs| × |D| for this query.
	if st.Entries > 200 {
		t.Fatalf("implausibly many table entries: %+v", st)
	}
}

// Disabling the memo must not change results (only cost).
func TestMemoOffAgreement(t *testing.T) {
	for _, tc := range enginetest.Cases {
		if tc.Need.Aggregates || tc.Need.Strings {
			continue // keep runtime small; semantics identical anyway
		}
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			enginetest.RunCase(t, func(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
				return EvaluateOptions(expr, ctx, Options{DisableMemo: true, Counter: &evalctx.Counter{Budget: 5_000_000}})
			}, tc)
		})
	}
}

func TestPositionSensitivityMarking(t *testing.T) {
	m := make(map[ast.Expr]bool)
	// A path is never position-sensitive even when its predicates are.
	p := parser.MustParse("a[position() = last()]")
	markSensitive(p, m)
	if m[p] {
		t.Error("path marked sensitive")
	}
	e := parser.MustParse("position() + 1")
	m2 := make(map[ast.Expr]bool)
	markSensitive(e, m2)
	if !m2[e] {
		t.Error("position()+1 not marked sensitive")
	}
}

// Eager table construction ([VLDB'02]) gives identical results to the
// lazy meaningful-contexts mode ([ICDE'03]) but computes at least as many
// table entries.
func TestEagerTables(t *testing.T) {
	for _, tc := range enginetest.Cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			enginetest.RunCase(t, func(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
				return EvaluateOptions(expr, ctx, Options{EagerTables: true})
			}, tc)
		})
	}
}

func TestEagerComputesMoreEntries(t *testing.T) {
	d, err := xmltree.ParseString("<a><b/><b/><c><b/><d/></c><d/></a>")
	if err != nil {
		t.Fatal(err)
	}
	expr := parser.MustParse("/a/c[b and not(d/e)]")
	_, lazy, err := EvaluateWithStats(expr, evalctx.Root(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, eager, err := EvaluateWithStats(expr, evalctx.Root(d), Options{EagerTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(value.NodeSet); !ok {
		t.Fatalf("result type %T", v)
	}
	if eager.Entries <= lazy.Entries {
		t.Fatalf("eager should fill more entries: eager %d, lazy %d", eager.Entries, lazy.Entries)
	}
}
