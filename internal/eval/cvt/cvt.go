// Package cvt implements the context-value-table evaluator of
// Gottlob/Koch/Pichler — the dynamic-programming algorithm behind
// Proposition 2.7 ("XPath query evaluation is in P with respect to combined
// complexity") and Theorems 7.2/7.3 of the paper.
//
// The idea of [VLDB'02]: for every node of the query tree, compute a
// context-value table relating evaluation contexts to result values, so
// that no (subexpression, context) pair is ever evaluated twice. This
// implementation realizes the table as a memo map filled on demand, which
// computes exactly the "meaningful contexts" subset of the full table —
// the time- and space-improvement direction of [ICDE'03].
//
// Two further properties matter for the paper's bounds:
//
//   - intermediate location-step results are node *sets* (normalized after
//     every step), never bags, bounding them by |D|;
//   - subexpressions that cannot observe position()/last() are keyed by
//     context node alone (location paths re-bind position and size, so a
//     path is always keyed by node only). The Options.DisableAdaptiveKeys
//     switch turns this off for the ablation benchmark
//     (BenchmarkAblation_CVTContextKeying).
package cvt

import (
	"fmt"
	"slices"
	"sync"

	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/funcs"
	"xpathcomplexity/internal/obs"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// Options configure an evaluation.
type Options struct {
	// Counter counts elementary operations; may be nil.
	Counter *evalctx.Counter
	// DisableAdaptiveKeys keys every memo entry by the full
	// (node, position, size) triple even for position-insensitive
	// subexpressions. Used by the ablation benchmark.
	DisableAdaptiveKeys bool
	// DisableMemo turns the memo off entirely, recovering naive
	// set-semantics recursion; used by tests demonstrating that the
	// polynomial bound comes from the table, not from set semantics alone.
	DisableMemo bool
	// DisableIndex evaluates without the per-document index: every
	// location step selects by walking the tree (the seed behaviour).
	// Kept for benchmarks and the differential suite's cold reference.
	DisableIndex bool
	// Tracer, when non-nil, receives enter/exit events for every
	// (subexpression, context) visit, memo hits included.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives engine.cvt.* and cvt.* totals:
	// operation counts, memo hits/misses and the per-evaluation
	// context-value-table size distribution (rows × subexpressions).
	Metrics *obs.Metrics
	// EagerTables precomputes, bottom-up over the query tree, the full
	// context-value table of every position-insensitive subexpression for
	// every document node before answering the query — the original
	// [VLDB'02] algorithm that Proposition 2.7 cites. The default lazy
	// mode fills only the "meaningful contexts" reached from the actual
	// query context, which is the [ICDE'03] time/space improvement the
	// paper's introduction describes. Results are identical; the ablation
	// benchmark measures the difference.
	EagerTables bool
	// Guard, when non-nil, enforces cancellation, the op budget, the
	// recursion-depth limit and the node-set cardinality limit. It is
	// charged in lockstep with Counter, so its MaxOps uses the same units
	// as Counter.Budget.
	Guard *evalctx.Guard
}

// Evaluate evaluates expr in ctx with the default options.
func Evaluate(expr ast.Expr, ctx evalctx.Context, ctr *evalctx.Counter) (value.Value, error) {
	return EvaluateOptions(expr, ctx, Options{Counter: ctr})
}

// EvaluateOptions evaluates expr in ctx with explicit options.
func EvaluateOptions(expr ast.Expr, ctx evalctx.Context, opts Options) (value.Value, error) {
	v, _, err := EvaluateWithStats(expr, ctx, opts)
	return v, err
}

// fillTables materializes the context-value table of every
// position-insensitive subexpression over the whole document, bottom-up
// (children first, which the recursive eval guarantees anyway via the
// memo). Position-sensitive subexpressions have no node-only table and
// stay lazy: their meaningful (pos, size) pairs only arise inside
// concrete selections.
func (e *evaluator) fillTables(expr ast.Expr, doc *xmltree.Document) error {
	var subs []ast.Expr
	seen := make(map[ast.Expr]bool)
	var collect func(x ast.Expr)
	collect = func(x ast.Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		switch y := x.(type) {
		case *ast.Path:
			for _, s := range y.Steps {
				for _, p := range s.Preds {
					collect(p)
				}
			}
		case *ast.Binary:
			collect(y.Left)
			collect(y.Right)
		case *ast.Unary:
			collect(y.Operand)
		case *ast.Call:
			for _, a := range y.Args {
				collect(a)
			}
		}
		subs = append(subs, x) // post-order: children before parents
	}
	collect(expr)
	for _, sub := range subs {
		if e.sensitive[sub] {
			continue
		}
		for _, n := range doc.Nodes {
			if _, err := e.eval(sub, evalctx.Context{Node: n, Pos: 1, Size: 1}); err != nil {
				return err
			}
		}
	}
	return nil
}

// TableStats reports the size of the context-value tables built during an
// evaluation; exposed for the space-complexity experiments (EXP-T72).
type TableStats struct {
	// Tables is the number of distinct subexpressions with a table.
	Tables int
	// Entries is the total number of (context, value) rows.
	Entries int
}

// EvaluateWithStats is Evaluate plus the table statistics of the run.
func EvaluateWithStats(expr ast.Expr, ctx evalctx.Context, opts Options) (value.Value, TableStats, error) {
	if opts.Counter == nil && (opts.Metrics != nil || opts.Tracer != nil) {
		// Instrumentation needs a counter to measure op deltas; synthesize
		// a private one so metrics reconcile even without a caller counter.
		opts.Counter = new(evalctx.Counter)
	}
	e := evaluatorPool.Get().(*evaluator)
	e.opts = opts
	markSensitive(expr, e.sensitive)
	startOps := opts.Counter.Ops()
	var v value.Value
	var err error
	if opts.EagerTables && ctx.Node != nil {
		err = e.fillTables(expr, ctx.Node.Document())
	}
	if err == nil {
		v, err = e.eval(expr, ctx)
	}
	st := TableStats{Tables: len(e.tables)}
	for _, tbl := range e.tables {
		st.Entries += len(tbl)
	}
	if m := opts.Metrics; m != nil {
		m.Counter("engine.cvt.ops").Add(opts.Counter.Ops() - startOps)
		m.Counter("engine.cvt.evals").Inc()
		m.Counter("cvt.memo.hits").Add(e.memoHits)
		m.Counter("cvt.memo.misses").Add(e.memoMisses)
		m.Histogram("cvt.table.subexprs").Observe(int64(st.Tables))
		m.Histogram("cvt.table.rows").Observe(int64(st.Entries))
	}
	obs.RecordScratch(opts.Metrics, e.scratchHits, e.scratchMisses)
	// Node-set results live in the evaluation's slab, which release()
	// recycles; copy the one value that escapes to the caller.
	if ns, ok := v.(value.NodeSet); ok && len(ns) > 0 {
		v = value.NodeSetFromOrdered(append(make([]*xmltree.Node, 0, len(ns)), ns...))
	}
	e.release()
	if err != nil {
		return nil, st, err
	}
	return v, st, nil
}

// ctxKey identifies a context in a context-value table. For
// position-insensitive expressions pos and size are zeroed, collapsing all
// contexts over the same node into one row.
type ctxKey struct {
	node *xmltree.Node
	pos  int
	size int
}

type evaluator struct {
	opts      Options
	idx       *xmltree.Index // lazily fetched; nil when disabled or unset
	marks     []bool         // document-sized scratch for normalizeFrontier
	sensitive map[ast.Expr]bool
	tables    map[ast.Expr]map[ctxKey]value.Value
	// memoHits and memoMisses are accumulated privately (one evaluation is
	// single-goroutine) and flushed to Options.Metrics at the end.
	memoHits   int64
	memoMisses int64

	// Pooled scratch, retained across evaluations via evaluatorPool.
	// tableFree recycles cleared inner memo maps; bufFree recycles the
	// frontier/collection/predicate node buffers of evalPath; slab holds
	// the carved node-set rows that memo values alias (reset wholesale on
	// release). scratchHits/scratchMisses feed eval.scratch.{hit,miss}.
	tableFree     []map[ctxKey]value.Value
	bufFree       [][]*xmltree.Node
	slab          []*xmltree.Node
	scratchHits   int64
	scratchMisses int64
	// start is the one-node initial frontier of evalPath, hoisted onto
	// the evaluator because a stack array passed as a slice escapes (one
	// heap allocation per predicate evaluation). Reuse across the nested
	// evalPath calls of predicate recursion is safe: the initial frontier
	// has exactly one element, which runSteps reads before any predicate
	// can recurse, and later frontiers live in the b0/b1 buffers.
	start [1]*xmltree.Node
}

// evaluatorPool recycles evaluators — and, through them, their memo maps,
// node buffers and result slabs — across evaluations. EvalBatch workers
// each Get their own instance, so no state is shared concurrently.
var evaluatorPool = sync.Pool{New: func() any {
	return &evaluator{
		sensitive: make(map[ast.Expr]bool),
		tables:    make(map[ast.Expr]map[ctxKey]value.Value),
	}
}}

// release clears all per-evaluation state and returns the evaluator to the
// pool. Inner memo maps are cleared and kept on tableFree (clearing a map
// retains its buckets, so the next evaluation of the same query inserts
// without rehashing); the slab and node buffers keep their capacity but
// drop their node pointers so a pooled evaluator never pins a document.
func (e *evaluator) release() {
	for expr, tbl := range e.tables {
		clear(tbl)
		e.tableFree = append(e.tableFree, tbl)
		delete(e.tables, expr)
	}
	clear(e.sensitive)
	if e.opts.Tracer != nil {
		// Trace sinks may retain the values they were shown, and node-set
		// values alias the slab; hand it to the GC instead of recycling.
		e.slab = nil
	} else {
		e.slab = e.slab[:0]
		clear(e.slab[:cap(e.slab)])
	}
	e.opts = Options{}
	e.idx = nil
	e.start[0] = nil // don't pin the last document from the pool
	e.memoHits, e.memoMisses = 0, 0
	e.scratchHits, e.scratchMisses = 0, 0
	evaluatorPool.Put(e)
}

// getBuf hands out a recycled node buffer (empty, arbitrary capacity).
func (e *evaluator) getBuf() []*xmltree.Node {
	if n := len(e.bufFree); n > 0 {
		b := e.bufFree[n-1]
		e.bufFree = e.bufFree[:n-1]
		e.scratchHits++
		return b[:0]
	}
	e.scratchMisses++
	return make([]*xmltree.Node, 0, 64)
}

// putBuf returns a buffer obtained from getBuf (possibly regrown). The
// contents are dropped so pooled buffers never pin document nodes.
func (e *evaluator) putBuf(b []*xmltree.Node) {
	b = b[:cap(b)]
	clear(b)
	e.bufFree = append(e.bufFree, b[:0])
}

// getTable hands out an empty memo map, recycled when possible.
func (e *evaluator) getTable() map[ctxKey]value.Value {
	if n := len(e.tableFree); n > 0 {
		t := e.tableFree[n-1]
		e.tableFree = e.tableFree[:n-1]
		e.scratchHits++
		return t
	}
	e.scratchMisses++
	return make(map[ctxKey]value.Value)
}

// carve copies nodes into the evaluation's result slab and returns the row
// as a node-set. Rows are immutable and stable for the lifetime of the
// evaluation (memo values alias them); the slab is recycled on release,
// which is why EvaluateWithStats copies the final result out first.
func (e *evaluator) carve(nodes []*xmltree.Node) value.NodeSet {
	if len(e.slab)+len(nodes) > cap(e.slab) {
		// A full slab stays alive through the rows already carved from it;
		// only the current one is recycled on release.
		c := 1024
		for c < len(nodes) {
			c <<= 1
		}
		e.slab = make([]*xmltree.Node, 0, c)
	}
	off := len(e.slab)
	e.slab = append(e.slab, nodes...)
	return value.NodeSet(e.slab[off:len(e.slab):len(e.slab)])
}

// emptyNodeSet is the shared boxed empty result: empty frontiers are
// common enough that re-boxing one per (path, context) row shows up in
// allocation profiles.
var emptyNodeSet value.Value = value.NodeSet{}

// selectStep selects axis::test from n in proximity order, through the
// document index unless disabled, appending to dst (the result never
// aliases index storage).
func (e *evaluator) selectStep(dst []*xmltree.Node, a ast.Axis, t ast.NodeTest, n *xmltree.Node) []*xmltree.Node {
	if e.opts.DisableIndex {
		return axes.AppendSelectProximity(dst, nil, a, t, n)
	}
	if e.idx == nil {
		e.idx = n.Document().Index()
	}
	return axes.AppendSelectProximity(dst, e.idx, a, t, n)
}

// markSensitive computes, per subexpression, whether its value can depend
// on the context position or size. Location paths re-bind position/size
// for their predicates, so a Path is never sensitive regardless of its
// predicate contents. Shared subexpressions (DAG-shaped queries) are
// visited once.
func markSensitive(e ast.Expr, out map[ast.Expr]bool) bool {
	if v, ok := out[e]; ok {
		return v
	}
	switch x := e.(type) {
	case *ast.Call:
		s := x.Name == "position" || x.Name == "last"
		for _, a := range x.Args {
			if markSensitive(a, out) {
				s = true
			}
		}
		out[e] = s
	case *ast.Binary:
		l := markSensitive(x.Left, out)
		r := markSensitive(x.Right, out)
		out[e] = l || r
	case *ast.Unary:
		out[e] = markSensitive(x.Operand, out)
	case *ast.Path:
		for _, st := range x.Steps {
			for _, p := range st.Preds {
				markSensitive(p, out) // fills the map for inner expressions
			}
		}
		out[e] = false
	default:
		out[e] = false
	}
	return out[e]
}

func (e *evaluator) key(expr ast.Expr, ctx evalctx.Context) ctxKey {
	if !e.opts.DisableAdaptiveKeys && !e.sensitive[expr] {
		return ctxKey{node: ctx.Node}
	}
	return ctxKey{node: ctx.Node, pos: ctx.Pos, size: ctx.Size}
}

// charge bumps the counter and the guard by the same n, so the guard's
// op budget is denominated exactly like Counter.Budget.
func (e *evaluator) charge(n int64) error {
	if err := e.opts.Counter.Step(n); err != nil {
		return err
	}
	if e.opts.Guard != nil {
		return e.opts.Guard.Step(n)
	}
	return nil
}

func (e *evaluator) eval(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if g := e.opts.Guard; g != nil {
		if err := g.Enter(); err != nil {
			return nil, err
		}
		defer g.Exit()
	}
	if e.opts.Tracer == nil {
		return e.evalMemo(expr, ctx)
	}
	sp := e.opts.Tracer.Enter(expr, ctx, e.opts.Counter)
	v, err := e.evalMemo(expr, ctx)
	e.opts.Tracer.Exit(sp, v, e.opts.Counter)
	return v, err
}

func (e *evaluator) evalMemo(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if err := e.charge(1); err != nil {
		return nil, err
	}
	var k ctxKey
	if !e.opts.DisableMemo {
		k = e.key(expr, ctx)
		if tbl, ok := e.tables[expr]; ok {
			if v, hit := tbl[k]; hit {
				e.memoHits++
				return v, nil
			}
		}
		e.memoMisses++
	}
	v, err := e.compute(expr, ctx)
	if err != nil {
		return nil, err
	}
	if !e.opts.DisableMemo {
		tbl := e.tables[expr]
		if tbl == nil {
			tbl = e.getTable()
			e.tables[expr] = tbl
		}
		tbl[k] = v
	}
	return v, nil
}

func (e *evaluator) compute(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	switch x := expr.(type) {
	case *ast.Path:
		return e.evalPath(x, ctx)
	case *ast.Binary:
		return e.evalBinary(x, ctx)
	case *ast.Unary:
		v, err := e.eval(x.Operand, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(-value.ToNumber(v)), nil
	case *ast.Call:
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := e.eval(a, ctx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return funcs.Call(x.Name, ctx, args)
	case *ast.Number:
		return value.Number(x.Val), nil
	case *ast.Literal:
		return value.String(x.Val), nil
	case *ast.LabelTest:
		return value.Boolean(ctx.Node != nil && ctx.Node.HasLabel(x.Label)), nil
	default:
		return nil, fmt.Errorf("cvt: unsupported expression %T", expr)
	}
}

func (e *evaluator) evalBinary(b *ast.Binary, ctx evalctx.Context) (value.Value, error) {
	switch {
	case b.Op == ast.OpOr || b.Op == ast.OpAnd:
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		lb := value.ToBoolean(l)
		if b.Op == ast.OpOr && lb {
			return value.Boolean(true), nil
		}
		if b.Op == ast.OpAnd && !lb {
			return value.Boolean(false), nil
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return value.Boolean(value.ToBoolean(r)), nil
	case b.Op == ast.OpUnion:
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		ln, ok1 := l.(value.NodeSet)
		rn, ok2 := r.(value.NodeSet)
		if !ok1 || !ok2 {
			return nil, &evalctx.TypeError{Op: "union", Want: "node-set", Got: fmt.Sprintf("%s | %s", l.Kind(), r.Kind())}
		}
		return ln.Union(rn), nil
	case b.Op.IsRelational():
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return value.Boolean(value.Compare(b.Op, l, r)), nil
	default:
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(value.Arith(b.Op, value.ToNumber(l), value.ToNumber(r))), nil
	}
}

// evalPath evaluates a location path with set semantics: the frontier
// after every step is a normalized node set, which is the invariant that
// keeps intermediate results bounded by |D|. The step frontiers live in
// two pooled buffers (the step being built and the one being read); only
// the final frontier is copied into the slab, where the memo keeps it.
func (e *evaluator) evalPath(p *ast.Path, ctx evalctx.Context) (value.Value, error) {
	if p.Absolute {
		if ctx.Node == nil {
			return nil, fmt.Errorf("cvt: absolute path with no context document")
		}
		e.start[0] = ctx.Node.Document().Root
	} else {
		e.start[0] = ctx.Node
	}
	if len(p.Steps) == 0 {
		return e.carve(e.start[:1]), nil
	}
	b0, b1 := e.getBuf(), e.getBuf()
	frontier, err := e.runSteps(p.Steps, e.start[:1], &b0, &b1)
	var v value.Value
	if err == nil {
		if len(frontier) == 0 {
			v = emptyNodeSet
		} else {
			v = e.carve(frontier)
		}
	}
	e.putBuf(b0)
	e.putBuf(b1)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// runSteps applies the location steps to the start frontier, alternating
// between the two caller-provided buffers (written back so regrown
// capacity is recycled). The returned frontier aliases one of them.
func (e *evaluator) runSteps(steps []*ast.Step, frontier []*xmltree.Node, b0, b1 *[]*xmltree.Node) ([]*xmltree.Node, error) {
	for si, step := range steps {
		buf := b0
		if si&1 == 1 {
			buf = b1
		}
		collected := (*buf)[:0]
		for _, n := range frontier {
			base := len(collected)
			collected = e.selectStep(collected, step.Axis, step.Test, n)
			sel := collected[base:]
			if err := e.charge(int64(len(sel) + 1)); err != nil {
				return nil, err
			}
			for _, pred := range step.Preds {
				kept, err := e.filterPredicate(sel, pred)
				if err != nil {
					return nil, err
				}
				sel = kept
			}
			collected = collected[:base+len(sel)]
			if e.opts.Guard != nil {
				if err := e.opts.Guard.CheckNodeSet(len(collected)); err != nil {
					return nil, err
				}
			}
		}
		collected = e.normalizeFrontier(collected)
		*buf = collected
		frontier = collected
	}
	return frontier, nil
}

// normalizeFrontier normalizes a step's collected selections into a node
// set, in place (the result is a prefix of collected's storage). Sorting
// costs O(K log K) in the collection size K, which dominates the
// evaluation when steps fan out from many context nodes; with the index
// live and a collection comparable to the document, a document-order
// bitmap scan dedupes in O(|D|+K) instead. Both produce the identical
// normalized set, and neither touches the operation counter.
func (e *evaluator) normalizeFrontier(collected []*xmltree.Node) []*xmltree.Node {
	if e.idx == nil || len(collected) < 64 || len(collected)*4 < len(e.idx.Doc().Nodes) {
		slices.SortFunc(collected, func(a, b *xmltree.Node) int { return a.Ord - b.Ord })
		out := collected[:0]
		for _, n := range collected {
			if len(out) == 0 || out[len(out)-1] != n {
				out = append(out, n)
			}
		}
		return out
	}
	d := e.idx.Doc()
	if len(e.marks) < len(d.Nodes) {
		e.marks = make([]bool, len(d.Nodes))
	}
	for _, n := range collected {
		e.marks[n.Ord] = true
	}
	// The marked scan emits at most len(collected) distinct nodes, so it
	// can overwrite collected as it goes: the marking pass above already
	// consumed the input.
	out := collected[:0]
	for _, n := range d.Nodes {
		if e.marks[n.Ord] {
			e.marks[n.Ord] = false
			out = append(out, n)
		}
	}
	return out
}

// filterPredicate filters sel in place by pred, per the XPath predicate
// rule (a number result keeps the node at that proximity position). sel
// is always storage the evaluator owns — selectStep copies out of index
// storage — so overwriting it is safe.
func (e *evaluator) filterPredicate(sel []*xmltree.Node, pred ast.Expr) ([]*xmltree.Node, error) {
	out := sel[:0]
	size := len(sel)
	for i, n := range sel {
		pctx := evalctx.Context{Node: n, Pos: i + 1, Size: size}
		v, err := e.eval(pred, pctx)
		if err != nil {
			return nil, err
		}
		keep := false
		if num, isNum := v.(value.Number); isNum {
			keep = float64(num) == float64(i+1)
		} else {
			keep = value.ToBoolean(v)
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}
