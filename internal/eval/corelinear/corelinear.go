// Package corelinear implements the O(|D|·|Q|) Core XPath evaluator of
// Gottlob/Koch (Proposition 2.7, second part; algorithm from [VLDB'02]).
//
// Core XPath (Definition 2.5 of the paper) is the logic-and-paths fragment:
// location paths over all axes, conditions built from 'and', 'or', 'not'
// and location paths, plus the T(l) label test of Remark 3.1. The key to
// linearity is that every syntactic query node is translated into one node
// *set* over the document:
//
//   - forward pass for the main path: the frontier after each step is
//     χ(F) ∩ test ∩ E[conditions], each an O(|D|) set operation;
//   - backward pass for condition paths: E[χ::t[e]/rest] =
//     χ⁻¹(test ∩ E[e] ∩ E[rest]), using the inverse-axis set operations of
//     package nodeset, again O(|D|) each.
//
// Every query-tree node is processed exactly once, so the total running
// time is O(|D|·|Q|).
//
// Beyond Core XPath the evaluator serves the counting fragment of
// package counting: positional predicates ([k], [last()],
// position()/last() comparisons) on child/attribute steps compile to
// one whole-document counting pass each — a node's rank among its
// parent's test-passing children is context independent — keeping the
// same set-per-query-node structure and O(|D|·|Q|) bound. The package
// rejects queries outside the fragment with ErrNotCore (CheckCore) or
// counting.ErrNotCounting (CheckCounting, the evaluation gate).
package corelinear

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/counting"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/nodeset"
	"xpathcomplexity/internal/obs"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// ErrNotCore reports that a query lies outside Core XPath.
var ErrNotCore = errors.New("query is not in Core XPath")

// CheckCore verifies that expr is a Core XPath query (Definition 2.5 plus
// the T(l) extension and the explicit boolean()/true()/false() conversions
// of Lemma 5.4). It returns a descriptive error wrapping ErrNotCore
// otherwise. Shared subexpressions (DAG-shaped queries, e.g. from the
// Theorem 4.2 reduction) are visited once.
func CheckCore(expr ast.Expr) error {
	return checkCore(expr, make(map[ast.Expr]bool))
}

func checkCore(expr ast.Expr, seen map[ast.Expr]bool) error {
	if seen[expr] {
		return nil
	}
	seen[expr] = true
	switch x := expr.(type) {
	case *ast.Path:
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				if err := checkCore(p, seen); err != nil {
					return err
				}
			}
		}
		return nil
	case *ast.Binary:
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpUnion:
			if err := checkCore(x.Left, seen); err != nil {
				return err
			}
			return checkCore(x.Right, seen)
		default:
			return fmt.Errorf("%w: operator %q", ErrNotCore, x.Op)
		}
	case *ast.Call:
		switch x.Name {
		case "not", "boolean":
			return checkCore(x.Args[0], seen)
		case "true", "false":
			return nil
		default:
			return fmt.Errorf("%w: function %q", ErrNotCore, x.Name)
		}
	case *ast.LabelTest:
		return nil
	default:
		return fmt.Errorf("%w: %T expression", ErrNotCore, expr)
	}
}

// CheckCounting verifies that expr is in the full fragment this
// evaluator serves: Core XPath extended with the counting fragment's
// positional predicates. It is the gate EvaluateOptions applies;
// CheckCore remains the strict Core XPath check for callers (the
// parallel engine, Theorem 4.2 reductions) that must exclude
// positional queries.
func CheckCounting(expr ast.Expr) error {
	return counting.Check(expr)
}

// Options configure an evaluation.
type Options struct {
	// Counter counts elementary operations; may be nil.
	Counter *evalctx.Counter
	// DisableIndex evaluates without the per-document index: every node
	// test is a full scan and no singleton-frontier fast path is taken.
	// This is the seed behaviour, kept for benchmarks and for the
	// differential suite's cold reference.
	DisableIndex bool
	// Tracer, when non-nil, receives enter/exit events for the top-level
	// expression and every condition subexpression (which this engine
	// evaluates once each, to a whole-document set).
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives engine.corelinear.* totals, the
	// per-step frontier-size distribution (corelinear.frontier) and the
	// sparse→dense demotion count (corelinear.mode_switches).
	Metrics *obs.Metrics
	// Guard, when non-nil, enforces cancellation, the op budget, the
	// recursion-depth limit and the node-set cardinality limit. It is
	// charged in lockstep with Counter, so its MaxOps uses the same units
	// as Counter.Budget.
	Guard *evalctx.Guard
}

// Evaluate evaluates a Core XPath query. Node-set queries return a
// value.NodeSet; condition queries (boolean combinations at top level)
// return a value.Boolean for the context node.
func Evaluate(expr ast.Expr, ctx evalctx.Context, ctr *evalctx.Counter) (value.Value, error) {
	return EvaluateOptions(expr, ctx, Options{Counter: ctr})
}

// EvaluateOptions evaluates a Core XPath query with explicit options.
func EvaluateOptions(expr ast.Expr, ctx evalctx.Context, opts Options) (value.Value, error) {
	if err := CheckCounting(expr); err != nil {
		return nil, err
	}
	if ctx.Node == nil {
		return nil, fmt.Errorf("corelinear: nil context node")
	}
	if opts.Counter == nil && (opts.Metrics != nil || opts.Tracer != nil) {
		// Instrumentation needs a counter to measure op deltas; synthesize
		// a private one so metrics reconcile even without a caller counter.
		opts.Counter = new(evalctx.Counter)
	}
	e := evaluatorPool.Get().(*evaluator)
	e.doc = ctx.Node.Document()
	e.ctr = opts.Counter
	e.tr = opts.Tracer
	e.guard = opts.Guard
	e.arena = nodeset.NewArena()
	defer e.release()
	if opts.Metrics != nil {
		e.frontierHist = opts.Metrics.Histogram("corelinear.frontier")
	}
	if !opts.DisableIndex {
		e.idx = e.doc.Index()
	}
	startOps := opts.Counter.Ops()
	v, err := e.evalTop(expr, ctx)
	if m := opts.Metrics; m != nil {
		m.Counter("engine.corelinear.ops").Add(opts.Counter.Ops() - startOps)
		m.Counter("engine.corelinear.evals").Inc()
		m.Counter("corelinear.mode_switches").Add(e.modeSwitches)
		hits, misses := e.arena.Stats()
		obs.RecordScratch(m, hits, misses)
	}
	return v, err
}

// evaluatorPool recycles evaluators (with their memo map buckets and
// marks bitmap) across evaluations.
var evaluatorPool = sync.Pool{
	New: func() any { return &evaluator{memo: make(map[condKey]nodeset.Set)} },
}

// condKey keys the condition memo. Position-insensitive conditions
// memoize by syntactic identity alone; positional conditions
// additionally key on the owning (step, predicate-index) pair, because
// their meaning depends on where they sit. The VM compiler uses the
// identical keying, which is what keeps op charges engine-independent.
type condKey struct {
	expr ast.Expr
	step *ast.Step
	pred int
}

// posEnv is the evaluation context of a condition subexpression (see
// the identically-shaped condEnv in internal/vm).
type posEnv struct {
	// step and pred locate the owning predicate (step nil at top level).
	step *ast.Step
	pred int
	// base is the conjunction of the step's earlier predicates' sets
	// (zero when pred 0 or no positional predicate follows).
	base nodeset.Set
	// root marks the predicate root, where the XPath number-predicate
	// special forms apply ([k] selects by position).
	root bool
	// boolCtx marks a boolean-converting context, where number
	// constants fold by the ≠0 rule.
	boolCtx bool
}

// inner is the environment for subexpressions of a boolean connective.
func (v posEnv) inner() posEnv {
	v.root = false
	v.boolCtx = true
	return v
}

// keyFor computes the memo key of a condition in its environment.
func keyFor(expr ast.Expr, env posEnv) condKey {
	sens := counting.Sensitive(expr)
	if env.root {
		sens = counting.SensitiveRoot(expr)
	}
	if sens && env.step != nil {
		return condKey{expr, env.step, env.pred}
	}
	return condKey{expr: expr}
}

type evaluator struct {
	doc   *xmltree.Document
	ctr   *evalctx.Counter
	tr    *obs.Tracer
	guard *evalctx.Guard
	idx   *xmltree.Index // nil when the index is disabled
	arena *nodeset.Arena // scratch arena; every transient Set lives here
	memo  map[condKey]nodeset.Set
	marks []bool // scratch dedup bitmap for sparse frontiers, always reset
	// listBuf/selBuf/visBuf/pruneBuf are arena node buffers backing the
	// sparse frontier machinery; lazily taken, released with the arena.
	listBuf, selBuf, visBuf, pruneBuf *[]*xmltree.Node
	// frontierHist is the corelinear.frontier handle (nil when metrics are
	// off); modeSwitches counts sparse→dense demotions, flushed at the end.
	frontierHist *obs.Histogram
	modeSwitches int64
}

// release returns the evaluator and all its arena-backed scratch memory
// to the pools. The memo map and marks bitmap are retained (cleared /
// known-reset) so a warm evaluator allocates nothing.
func (e *evaluator) release() {
	clear(e.memo) // memoized sets are arena-backed; drop before the arena goes
	e.arena.Release()
	e.doc, e.ctr, e.tr, e.guard, e.idx, e.arena = nil, nil, nil, nil, nil, nil
	e.listBuf, e.selBuf, e.visBuf, e.pruneBuf = nil, nil, nil, nil
	e.frontierHist = nil
	e.modeSwitches = 0
	evaluatorPool.Put(e)
}

// buf lazily takes an arena node buffer into the given field.
func (e *evaluator) buf(p **[]*xmltree.Node) *[]*xmltree.Node {
	if *p == nil {
		*p = e.arena.NodeBuf()
	}
	return *p
}

// charge bumps the counter and the guard by the same n, so the guard's
// op budget is denominated exactly like Counter.Budget.
func (e *evaluator) charge(n int64) error {
	if err := e.ctr.Step(n); err != nil {
		return err
	}
	if e.guard != nil {
		return e.guard.Step(n)
	}
	return nil
}

// evalTop dispatches the top-level expression: a path runs forward from
// the context node, a union evaluates both sides with the shared memo,
// and anything else is a condition answered at the context node.
func (e *evaluator) evalTop(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if g := e.guard; g != nil {
		if err := g.Enter(); err != nil {
			return nil, err
		}
		defer g.Exit()
	}
	if e.tr == nil {
		return e.evalTopInner(expr, ctx)
	}
	sp := e.tr.Enter(expr, ctx, e.ctr)
	v, err := e.evalTopInner(expr, ctx)
	e.tr.Exit(sp, v, e.ctr)
	return v, err
}

func (e *evaluator) evalTopInner(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if p, ok := expr.(*ast.Path); ok {
		res, err := e.forwardPath(p, ctx.Node)
		if err != nil {
			return nil, err
		}
		// Nodes() materializes into fresh heap memory, so the result
		// survives the arena release; it is sorted and duplicate free, so
		// no normalization copy is needed.
		return value.NodeSetFromOrdered(res.Nodes()), nil
	}
	if b, ok := expr.(*ast.Binary); ok && b.Op == ast.OpUnion {
		l, err := e.evalTop(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.evalTop(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return l.(value.NodeSet).Union(r.(value.NodeSet)), nil
	}
	set, err := e.condSet(expr, posEnv{})
	if err != nil {
		return nil, err
	}
	return value.Boolean(set.Has(ctx.Node)), nil
}

// observeFrontier records one post-step frontier size; the (linear) dense
// count is only taken when the histogram is live.
func (e *evaluator) observeFrontier(sparse bool, list []*xmltree.Node, dense nodeset.Set) {
	if e.frontierHist == nil {
		return
	}
	if sparse {
		e.frontierHist.Observe(int64(len(list)))
	} else {
		e.frontierHist.Observe(int64(dense.Count()))
	}
}

// testSet returns the membership set of a node test, from the index's
// shared per-document cache when available. The result is read-only
// either way: callers only And it into fresh sets.
func (e *evaluator) testSet(a ast.Axis, t ast.NodeTest) nodeset.Set {
	if e.idx != nil {
		return nodeset.TestSetCached(e.idx, a, t)
	}
	return nodeset.TestSetArena(e.arena, e.doc, a, t)
}

// forwardPath evaluates a location path from a single start node,
// left-to-right over set frontiers. With an index it runs in hybrid
// sparse/dense mode (forwardPathSparse); without one every step is a
// dense O(|D|) axis pass plus test intersection, the seed behaviour.
func (e *evaluator) forwardPath(p *ast.Path, start *xmltree.Node) (nodeset.Set, error) {
	first := start
	if p.Absolute {
		first = e.doc.Root
	}
	if e.idx != nil {
		return e.forwardPathSparse(p, first)
	}
	frontier := e.arena.New(e.doc)
	frontier.Add(first)
	for _, step := range p.Steps {
		if err := e.charge(int64(len(e.doc.Nodes))); err != nil {
			return nodeset.Set{}, err
		}
		// The frontier is exclusively ours and the axis image is fresh (or,
		// for self, the frontier itself), so the node test intersects in
		// place.
		next := nodeset.ApplyAxisIndexedOwned(e.arena, nil, step.Axis, frontier).
			AndWith(e.testSet(step.Axis, step.Test))
		pe := e.predEval(step)
		for i := range step.Preds {
			cond, err := pe.set(i)
			if err != nil {
				return nodeset.Set{}, err
			}
			next = next.AndWith(cond)
		}
		frontier = next
		e.observeFrontier(false, nil, frontier)
	}
	return frontier, nil
}

// sparseDivisor bounds list-mode frontiers: a frontier stays an explicit
// node list while it holds at most |D|/sparseDivisor nodes, and demotes
// to a dense membership set beyond that. A sparse step touches only the
// frontier and its image where a dense step makes ~3 full-document
// passes, so sparse wins until the frontier is a sizable fraction of the
// document.
const sparseDivisor = 2

// forwardPathSparse evaluates the steps keeping the frontier as an
// explicit node list while it is small, so each step costs O(output)
// via per-node index lookups rather than O(|D|) dense passes. The
// frontier demotes to a dense set (and stays dense) as soon as it grows
// past the sparse bound or the step's axis has no sparse selection.
// Counter charges are identical in both modes — one Step(|D|) per step —
// so operation counts do not depend on the representation.
func (e *evaluator) forwardPathSparse(p *ast.Path, first *xmltree.Node) (nodeset.Set, error) {
	// The sparse frontier double-buffers between two arena node buffers:
	// selectSparse reads the current list while appending into the spare,
	// then the roles swap. Predicate filtering compacts in place.
	cur, spare := e.buf(&e.listBuf), e.buf(&e.selBuf)
	*cur = append((*cur)[:0], first)
	list := *cur // sparse frontier, valid while sparse
	sparse := true
	var dense nodeset.Set // dense frontier, valid once !sparse
	for _, step := range p.Steps {
		if err := e.charge(int64(len(e.doc.Nodes))); err != nil {
			return nodeset.Set{}, err
		}
		if sparse {
			if sel, ok := e.selectSparse(step.Axis, step.Test, list, (*spare)[:0]); ok {
				*spare = sel
				list = sel
				cur, spare = spare, cur
			} else {
				dense, sparse = e.arena.FromNodes(e.doc, list...), false
				e.modeSwitches++
			}
		}
		if !sparse {
			dense = nodeset.ApplyAxisIndexedOwned(e.arena, e.idx, step.Axis, dense).
				AndWith(e.testSet(step.Axis, step.Test))
		}
		pe := e.predEval(step)
		for i := range step.Preds {
			cond, err := pe.set(i)
			if err != nil {
				return nodeset.Set{}, err
			}
			if sparse {
				kept := list[:0] // the frontier buffer is exclusively ours
				for _, n := range list {
					if cond.HasOrd(n.Ord) {
						kept = append(kept, n)
					}
				}
				list = kept
				*cur = kept
			} else {
				dense = dense.AndWith(cond)
			}
		}
		if sparse && len(list) > len(e.doc.Nodes)/sparseDivisor {
			dense, sparse = e.arena.FromNodes(e.doc, list...), false
			e.modeSwitches++
		}
		// Only materialized (sparse) frontiers are counted against the
		// node-set limit; dense bitsets are O(|D|) by construction.
		if sparse && e.guard != nil {
			if err := e.guard.CheckNodeSet(len(list)); err != nil {
				return nodeset.Set{}, err
			}
		}
		e.observeFrontier(sparse, list, dense)
	}
	if sparse {
		return e.arena.FromNodes(e.doc, list...), nil
	}
	return dense, nil
}

// selectSparse computes axis::test over an explicit frontier list for
// the axes whose cost is bounded by the frontier and output sizes:
// per-node neighbourhoods with disjoint images (self, child, attribute),
// parent (deduplicated via the marks scratch), ancestor and
// following-sibling chains with a visited-stop, and the descendant axes
// via subtree slices from a nesting-pruned frontier. Following/preceding
// apply only from a singleton frontier, where SelectFast slices the tag
// list directly. Preceding-sibling reports ok=false and falls
// back to the dense passes. The result is appended to out (the caller's
// spare frontier buffer, sliced to length 0), duplicate free, in
// arbitrary order (positional ranks come from whole-document counting
// sets filtered by membership, never from frontier order, and the final
// set conversion restores document order).
func (e *evaluator) selectSparse(a ast.Axis, t ast.NodeTest, list, out []*xmltree.Node) ([]*xmltree.Node, bool) {
	switch a {
	case ast.AxisSelf:
		for _, n := range list {
			if axes.MatchTest(a, n, t) {
				out = append(out, n)
			}
		}
	case ast.AxisChild:
		// Distinct frontier nodes have disjoint child lists: no dedup.
		for _, n := range list {
			for _, c := range n.Children {
				if axes.MatchTest(a, c, t) {
					out = append(out, c)
				}
			}
		}
	case ast.AxisAttribute:
		for _, n := range list {
			for _, at := range n.Attrs {
				if axes.MatchTest(a, at, t) {
					out = append(out, at)
				}
			}
		}
	case ast.AxisParent:
		if len(e.marks) < len(e.doc.Nodes) {
			e.marks = make([]bool, len(e.doc.Nodes))
		}
		for _, n := range list {
			if p := n.Parent; p != nil && !e.marks[p.Ord] && axes.MatchTest(a, p, t) {
				e.marks[p.Ord] = true
				out = append(out, p)
			}
		}
		for _, n := range out {
			e.marks[n.Ord] = false
		}
	case ast.AxisAncestor, ast.AxisAncestorOrSelf:
		// Walk parent chains with a visited-stop: once a chain hits an
		// already-visited node the rest of it is visited too, so the
		// total walk is O(frontier + distinct ancestors).
		if len(e.marks) < len(e.doc.Nodes) {
			e.marks = make([]bool, len(e.doc.Nodes))
		}
		par := e.idx.ParentOrds()
		vb := e.buf(&e.visBuf)
		visited := (*vb)[:0]
		for _, n := range list {
			j := int32(n.Ord)
			if a == ast.AxisAncestor {
				j = par[n.Ord]
			}
			for ; j >= 0 && !e.marks[j]; j = par[j] {
				e.marks[j] = true
				visited = append(visited, e.doc.Nodes[j])
			}
		}
		*vb = visited
		for _, m := range visited {
			e.marks[m.Ord] = false
			if axes.MatchTest(a, m, t) {
				out = append(out, m)
			}
		}
	case ast.AxisFollowingSibling:
		// Same visited-stop trick along next-sibling chains: a visited
		// node's entire suffix is already visited.
		if len(e.marks) < len(e.doc.Nodes) {
			e.marks = make([]bool, len(e.doc.Nodes))
		}
		next := e.idx.NextSiblingOrds()
		vb := e.buf(&e.visBuf)
		visited := (*vb)[:0]
		for _, n := range list {
			for j := next[n.Ord]; j >= 0 && !e.marks[j]; j = next[j] {
				e.marks[j] = true
				visited = append(visited, e.doc.Nodes[j])
			}
		}
		*vb = visited
		for _, m := range visited {
			e.marks[m.Ord] = false
			if axes.MatchTest(a, m, t) {
				out = append(out, m)
			}
		}
	case ast.AxisDescendant, ast.AxisDescendantOrSelf:
		// After pruning frontier nodes nested inside other members, the
		// surviving subtrees are pairwise disjoint, and a pruned member's
		// whole selection (itself included, for descendant-or-self) lies
		// inside its covering ancestor's subtree slice.
		for _, n := range e.pruneNested(list) {
			sel, ok := axes.SelectFast(e.idx, a, t, n)
			if !ok {
				return nil, false
			}
			out = append(out, sel...)
		}
	case ast.AxisFollowing, ast.AxisPreceding:
		if len(list) != 1 {
			return nil, false
		}
		sel, ok := axes.SelectFast(e.idx, a, t, list[0])
		if !ok {
			return nil, false
		}
		out = append(out, sel...)
	default:
		return nil, false
	}
	return out, true
}

// pruneNested drops list members lying inside another member's subtree.
// Attributes share their owner's pre/post interval, so an attribute
// survives alongside its owner (its empty/self-only selection adds
// nothing the owner's subtree slice misses).
func (e *evaluator) pruneNested(list []*xmltree.Node) []*xmltree.Node {
	if len(list) <= 1 {
		return list
	}
	pb := e.buf(&e.pruneBuf)
	sorted := append((*pb)[:0], list...)
	*pb = sorted
	slices.SortFunc(sorted, func(a, b *xmltree.Node) int { return a.Pre - b.Pre })
	out := sorted[:0]
	for _, n := range sorted {
		if len(out) > 0 {
			if last := out[len(out)-1]; n.Pre > last.Pre && n.Post < last.Post {
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

// predEval evaluates a step's predicate list left to right, supplying
// each predicate its positional environment. For a positional predicate
// at index i > 0, rank counting is restricted to siblings that pass the
// earlier predicates, so predEval lazily accumulates the conjunction of
// preceding condition sets — only while a position-sensitive predicate
// still follows (lastSens), exactly as the VM compiler chains OpAndSlot.
// The accumulated base aliases memoized condition sets and is only ever
// read, never mutated.
type predEval struct {
	e        *evaluator
	step     *ast.Step
	lastSens int
	base     nodeset.Set
}

func (e *evaluator) predEval(step *ast.Step) predEval {
	pe := predEval{e: e, step: step, lastSens: -1}
	if len(step.Preds) > 1 {
		for i, p := range step.Preds {
			if counting.SensitiveRoot(p) {
				pe.lastSens = i
			}
		}
	}
	return pe
}

// set computes predicate i's condition set.
func (pe *predEval) set(i int) (nodeset.Set, error) {
	env := posEnv{step: pe.step, pred: i, root: true, boolCtx: true}
	if i > 0 {
		env.base = pe.base
	}
	cond, err := pe.e.condSet(pe.step.Preds[i], env)
	if err != nil {
		return nodeset.Set{}, err
	}
	if i < pe.lastSens {
		if pe.base.Words == nil {
			pe.base = cond
		} else {
			pe.base = pe.e.arena.And(pe.base, cond)
		}
	}
	return cond, nil
}

// posSet materializes a recognized positional condition as a
// whole-document set: the nodes whose rank among their parent's
// test-and-base-passing children satisfies the comparison. On the
// singleton axes the rank is always 1 of 1 and the condition folds to a
// constant. The uncharged counting pass mirrors OpCondPos.
func (e *evaluator) posSet(cnd counting.Cond, env posEnv) (nodeset.Set, error) {
	if cnd.IsConst {
		if cnd.Const {
			return e.arena.Full(e.doc), nil
		}
		return e.arena.New(e.doc), nil
	}
	step := env.step
	if step == nil {
		return nodeset.Set{}, fmt.Errorf("%w: positional comparison outside a predicate", ErrNotCore)
	}
	if counting.SingletonAxis(step.Axis) {
		if cnd.Cmp.Eval(1, 1) {
			return e.arena.Full(e.doc), nil
		}
		return e.arena.New(e.doc), nil
	}
	if !counting.CountableAxis(step.Axis) {
		return nodeset.Set{}, fmt.Errorf("%w: positional predicate on the %s axis", ErrNotCore, step.Axis)
	}
	out := e.arena.New(e.doc)
	counting.Fill(e.doc, step.Axis, e.testSet(step.Axis, step.Test), env.base, cnd.Cmp, out)
	return out, nil
}

// condSet computes E[cond] = the set of nodes at which the condition
// holds. Each syntactic condition node is computed exactly once (memo);
// position-sensitive conditions are computed once per owning predicate
// (see condKey). Traced visits carry the zero context: a condition set
// is computed for the whole document, not for one context node.
func (e *evaluator) condSet(expr ast.Expr, env posEnv) (nodeset.Set, error) {
	if g := e.guard; g != nil {
		if err := g.Enter(); err != nil {
			return nodeset.Set{}, err
		}
		defer g.Exit()
	}
	if e.tr == nil {
		return e.condSetInner(expr, env)
	}
	sp := e.tr.Enter(expr, evalctx.Context{}, e.ctr)
	s, err := e.condSetInner(expr, env)
	e.tr.ExitSet(sp, s, e.ctr)
	return s, err
}

func (e *evaluator) condSetInner(expr ast.Expr, env posEnv) (nodeset.Set, error) {
	key := keyFor(expr, env)
	if s, ok := e.memo[key]; ok {
		return s, nil
	}
	if err := e.charge(int64(len(e.doc.Nodes))); err != nil {
		return nodeset.Set{}, err
	}
	if env.root {
		// The XPath number-predicate forms: [k] is position()=k, [last()]
		// is position()=last(), a bare [position()] is constantly true.
		if cnd, ok := counting.RecognizeRoot(expr); ok {
			out, err := e.posSet(cnd, env)
			if err != nil {
				return nodeset.Set{}, err
			}
			e.memo[key] = out
			return out, nil
		}
		env.root = false
	}
	var out nodeset.Set
	var err error
	switch x := expr.(type) {
	case *ast.Binary:
		var l, r nodeset.Set
		switch x.Op {
		case ast.OpAnd:
			if l, err = e.condSet(x.Left, env.inner()); err != nil {
				return nodeset.Set{}, err
			}
			if r, err = e.condSet(x.Right, env.inner()); err != nil {
				return nodeset.Set{}, err
			}
			out = e.arena.And(l, r)
		case ast.OpOr, ast.OpUnion:
			if l, err = e.condSet(x.Left, env.inner()); err != nil {
				return nodeset.Set{}, err
			}
			if r, err = e.condSet(x.Right, env.inner()); err != nil {
				return nodeset.Set{}, err
			}
			out = e.arena.Or(l, r)
		default:
			if x.Op.IsRelational() {
				cnd, ok := counting.RecognizeCmp(x)
				if !ok {
					return nodeset.Set{}, fmt.Errorf("%w: relational %q over non-positional operands", ErrNotCore, x.Op)
				}
				if out, err = e.posSet(cnd, env); err != nil {
					return nodeset.Set{}, err
				}
				break
			}
			cnd, ok := counting.Cond{}, false
			if env.boolCtx {
				cnd, ok = counting.RecognizeBool(expr)
			}
			if !ok {
				return nodeset.Set{}, fmt.Errorf("%w: operator %q", ErrNotCore, x.Op)
			}
			if out, err = e.posSet(cnd, env); err != nil {
				return nodeset.Set{}, err
			}
		}
	case *ast.Call:
		switch x.Name {
		case "not":
			inner, err := e.condSet(x.Args[0], env.inner())
			if err != nil {
				return nodeset.Set{}, err
			}
			out = e.arena.Not(inner)
		case "boolean":
			return e.condSet(x.Args[0], env.inner())
		case "true":
			out = e.arena.Full(e.doc)
		case "false":
			out = e.arena.New(e.doc)
		case "position", "last":
			// In a boolean context both are constantly true: positions are
			// numbered from one. Number-typed at top level is out of scope.
			if !env.boolCtx {
				return nodeset.Set{}, fmt.Errorf("%w: number-typed %s() at top level", ErrNotCore, x.Name)
			}
			out = e.arena.Full(e.doc)
		default:
			return nodeset.Set{}, fmt.Errorf("%w: function %q", ErrNotCore, x.Name)
		}
	case *ast.LabelTest:
		out = nodeset.LabelSetArena(e.arena, e.doc, x.Label)
	case *ast.Path:
		out, err = e.backwardPath(x)
		if err != nil {
			return nodeset.Set{}, err
		}
	default:
		cnd, ok := counting.Cond{}, false
		if env.boolCtx {
			cnd, ok = counting.RecognizeBool(expr)
		}
		if !ok {
			return nodeset.Set{}, fmt.Errorf("%w: %T in condition", ErrNotCore, expr)
		}
		if out, err = e.posSet(cnd, env); err != nil {
			return nodeset.Set{}, err
		}
	}
	e.memo[key] = out
	return out, nil
}

// backwardPath computes E[π] = { x | π evaluated at x selects ≥1 node }
// by processing the steps right-to-left with inverse-axis set operations.
func (e *evaluator) backwardPath(p *ast.Path) (nodeset.Set, error) {
	s := e.arena.Full(e.doc)
	for i := len(p.Steps) - 1; i >= 0; i-- {
		step := p.Steps[i]
		if err := e.charge(int64(len(e.doc.Nodes))); err != nil {
			return nodeset.Set{}, err
		}
		// s starts as the fresh arena Full set and stays exclusively ours
		// down the chain, so the intersections run in place and the
		// inverse image may consume it.
		s = s.AndWith(e.testSet(step.Axis, step.Test))
		pe := e.predEval(step)
		for pi := range step.Preds {
			cond, err := pe.set(pi)
			if err != nil {
				return nodeset.Set{}, err
			}
			s = s.AndWith(cond)
		}
		s = nodeset.ApplyInverseAxisIndexedOwned(e.arena, e.idx, step.Axis, s)
	}
	if p.Absolute {
		// The condition /π holds everywhere or nowhere, depending on the
		// root.
		if s.Has(e.doc.Root) {
			return e.arena.Full(e.doc), nil
		}
		return e.arena.New(e.doc), nil
	}
	return s, nil
}
