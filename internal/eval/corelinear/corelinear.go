// Package corelinear implements the O(|D|·|Q|) Core XPath evaluator of
// Gottlob/Koch (Proposition 2.7, second part; algorithm from [VLDB'02]).
//
// Core XPath (Definition 2.5 of the paper) is the logic-and-paths fragment:
// location paths over all axes, conditions built from 'and', 'or', 'not'
// and location paths, plus the T(l) label test of Remark 3.1. The key to
// linearity is that every syntactic query node is translated into one node
// *set* over the document:
//
//   - forward pass for the main path: the frontier after each step is
//     χ(F) ∩ test ∩ E[conditions], each an O(|D|) set operation;
//   - backward pass for condition paths: E[χ::t[e]/rest] =
//     χ⁻¹(test ∩ E[e] ∩ E[rest]), using the inverse-axis set operations of
//     package nodeset, again O(|D|) each.
//
// Every query-tree node is processed exactly once, so the total running
// time is O(|D|·|Q|). The package rejects queries outside Core XPath with
// ErrNotCore.
package corelinear

import (
	"errors"
	"fmt"

	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/nodeset"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// ErrNotCore reports that a query lies outside Core XPath.
var ErrNotCore = errors.New("query is not in Core XPath")

// CheckCore verifies that expr is a Core XPath query (Definition 2.5 plus
// the T(l) extension and the explicit boolean()/true()/false() conversions
// of Lemma 5.4). It returns a descriptive error wrapping ErrNotCore
// otherwise. Shared subexpressions (DAG-shaped queries, e.g. from the
// Theorem 4.2 reduction) are visited once.
func CheckCore(expr ast.Expr) error {
	return checkCore(expr, make(map[ast.Expr]bool))
}

func checkCore(expr ast.Expr, seen map[ast.Expr]bool) error {
	if seen[expr] {
		return nil
	}
	seen[expr] = true
	switch x := expr.(type) {
	case *ast.Path:
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				if err := checkCore(p, seen); err != nil {
					return err
				}
			}
		}
		return nil
	case *ast.Binary:
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpUnion:
			if err := checkCore(x.Left, seen); err != nil {
				return err
			}
			return checkCore(x.Right, seen)
		default:
			return fmt.Errorf("%w: operator %q", ErrNotCore, x.Op)
		}
	case *ast.Call:
		switch x.Name {
		case "not", "boolean":
			return checkCore(x.Args[0], seen)
		case "true", "false":
			return nil
		default:
			return fmt.Errorf("%w: function %q", ErrNotCore, x.Name)
		}
	case *ast.LabelTest:
		return nil
	default:
		return fmt.Errorf("%w: %T expression", ErrNotCore, expr)
	}
}

// Evaluate evaluates a Core XPath query. Node-set queries return a
// value.NodeSet; condition queries (boolean combinations at top level)
// return a value.Boolean for the context node.
func Evaluate(expr ast.Expr, ctx evalctx.Context, ctr *evalctx.Counter) (value.Value, error) {
	if err := CheckCore(expr); err != nil {
		return nil, err
	}
	if ctx.Node == nil {
		return nil, fmt.Errorf("corelinear: nil context node")
	}
	e := &evaluator{
		doc:  ctx.Node.Document(),
		ctr:  ctr,
		memo: make(map[ast.Expr]nodeset.Set),
	}
	if p, ok := expr.(*ast.Path); ok {
		res, err := e.forwardPath(p, ctx.Node)
		if err != nil {
			return nil, err
		}
		return value.NewNodeSet(res.Nodes()...), nil
	}
	if b, ok := expr.(*ast.Binary); ok && b.Op == ast.OpUnion {
		l, err := Evaluate(b.Left, ctx, ctr)
		if err != nil {
			return nil, err
		}
		r, err := Evaluate(b.Right, ctx, ctr)
		if err != nil {
			return nil, err
		}
		return l.(value.NodeSet).Union(r.(value.NodeSet)), nil
	}
	set, err := e.condSet(expr)
	if err != nil {
		return nil, err
	}
	return value.Boolean(set.Has(ctx.Node)), nil
}

type evaluator struct {
	doc  *xmltree.Document
	ctr  *evalctx.Counter
	memo map[ast.Expr]nodeset.Set
}

// forwardPath evaluates a location path from a single start node,
// left-to-right over set frontiers.
func (e *evaluator) forwardPath(p *ast.Path, start *xmltree.Node) (nodeset.Set, error) {
	frontier := nodeset.New(e.doc)
	if p.Absolute {
		frontier.Add(e.doc.Root)
	} else {
		frontier.Add(start)
	}
	for _, step := range p.Steps {
		if err := e.ctr.Step(int64(len(e.doc.Nodes))); err != nil {
			return nodeset.Set{}, err
		}
		next := nodeset.ApplyAxis(step.Axis, frontier).And(nodeset.TestSet(e.doc, step.Axis, step.Test))
		for _, pred := range step.Preds {
			cond, err := e.condSet(pred)
			if err != nil {
				return nodeset.Set{}, err
			}
			next = next.And(cond)
		}
		frontier = next
	}
	return frontier, nil
}

// condSet computes E[cond] = the set of nodes at which the condition
// holds. Each syntactic condition node is computed exactly once (memo).
func (e *evaluator) condSet(expr ast.Expr) (nodeset.Set, error) {
	if s, ok := e.memo[expr]; ok {
		return s, nil
	}
	if err := e.ctr.Step(int64(len(e.doc.Nodes))); err != nil {
		return nodeset.Set{}, err
	}
	var out nodeset.Set
	var err error
	switch x := expr.(type) {
	case *ast.Binary:
		var l, r nodeset.Set
		switch x.Op {
		case ast.OpAnd:
			if l, err = e.condSet(x.Left); err != nil {
				return nodeset.Set{}, err
			}
			if r, err = e.condSet(x.Right); err != nil {
				return nodeset.Set{}, err
			}
			out = l.And(r)
		case ast.OpOr, ast.OpUnion:
			if l, err = e.condSet(x.Left); err != nil {
				return nodeset.Set{}, err
			}
			if r, err = e.condSet(x.Right); err != nil {
				return nodeset.Set{}, err
			}
			out = l.Or(r)
		default:
			return nodeset.Set{}, fmt.Errorf("%w: operator %q", ErrNotCore, x.Op)
		}
	case *ast.Call:
		switch x.Name {
		case "not":
			inner, err := e.condSet(x.Args[0])
			if err != nil {
				return nodeset.Set{}, err
			}
			out = inner.Not()
		case "boolean":
			return e.condSet(x.Args[0])
		case "true":
			out = nodeset.Full(e.doc)
		case "false":
			out = nodeset.New(e.doc)
		default:
			return nodeset.Set{}, fmt.Errorf("%w: function %q", ErrNotCore, x.Name)
		}
	case *ast.LabelTest:
		out = nodeset.LabelSet(e.doc, x.Label)
	case *ast.Path:
		out, err = e.backwardPath(x)
		if err != nil {
			return nodeset.Set{}, err
		}
	default:
		return nodeset.Set{}, fmt.Errorf("%w: %T in condition", ErrNotCore, expr)
	}
	e.memo[expr] = out
	return out, nil
}

// backwardPath computes E[π] = { x | π evaluated at x selects ≥1 node }
// by processing the steps right-to-left with inverse-axis set operations.
func (e *evaluator) backwardPath(p *ast.Path) (nodeset.Set, error) {
	s := nodeset.Full(e.doc)
	for i := len(p.Steps) - 1; i >= 0; i-- {
		step := p.Steps[i]
		if err := e.ctr.Step(int64(len(e.doc.Nodes))); err != nil {
			return nodeset.Set{}, err
		}
		s = s.And(nodeset.TestSet(e.doc, step.Axis, step.Test))
		for _, pred := range step.Preds {
			cond, err := e.condSet(pred)
			if err != nil {
				return nodeset.Set{}, err
			}
			s = s.And(cond)
		}
		s = nodeset.ApplyInverseAxis(step.Axis, s)
	}
	if p.Absolute {
		// The condition /π holds everywhere or nowhere, depending on the
		// root.
		if s.Has(e.doc.Root) {
			return nodeset.Full(e.doc), nil
		}
		return nodeset.New(e.doc), nil
	}
	return s, nil
}
