package corelinear

import (
	"errors"
	"math/rand"
	"testing"

	"xpathcomplexity/internal/counting"
	"xpathcomplexity/internal/eval/cvt"
	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

func engine(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	return Evaluate(expr, ctx, nil)
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, engine, enginetest.CoreCaps)
}

func TestCachedEquivalence(t *testing.T) {
	enginetest.RunCachedEquivalence(t, "corelinear", engine, enginetest.CoreCaps, enginetest.GenCore)
}

func TestConformanceColumnarBackend(t *testing.T) {
	enginetest.RunBackend(t, engine, enginetest.CoreCaps, xmltree.BackendColumnar)
}

func TestBackendEquivalence(t *testing.T) {
	enginetest.RunBackendEquivalence(t, "corelinear", engine, enginetest.CoreCaps, enginetest.GenCore)
}

func TestCheckCore(t *testing.T) {
	good := []string{
		"/descendant::a/child::b",
		"//a[b and not(c)]",
		"a[not(b or c)]/d",
		"a | b[c]",
		"//*[T(G) and T(R)]",
		"a[boolean(b)]",
		"a[true() or false()]",
		"a[/b]",
	}
	for _, q := range good {
		if err := CheckCore(parser.MustParse(q)); err != nil {
			t.Errorf("CheckCore(%q) = %v, want nil", q, err)
		}
	}
	bad := []string{
		"a[position() = 1]",
		"a[1]",
		"count(a)",
		"a[b = 'x']",
		"1 + 2",
		"a[string-length(b) > 0]",
		"'lit'",
	}
	for _, q := range bad {
		err := CheckCore(parser.MustParse(q))
		if !errors.Is(err, ErrNotCore) {
			t.Errorf("CheckCore(%q) = %v, want ErrNotCore", q, err)
		}
	}
}

func TestRejectsNonCoreOnEvaluate(t *testing.T) {
	// Positional predicates on countable axes now evaluate (the counting
	// fragment); the evaluation gate is CheckCounting, so only queries
	// outside it are rejected at Evaluate time.
	d, _ := xmltree.ParseString("<a/>")
	_, err := Evaluate(parser.MustParse("count(a)"), evalctx.Root(d), nil)
	if !errors.Is(err, counting.ErrNotCounting) {
		t.Fatalf("err = %v, want ErrNotCounting", err)
	}
}

func TestCheckCounting(t *testing.T) {
	good := []string{
		"a[1]",
		"//a[last()]/b",
		"a[position() = 1]",
		"//a[position() < 3][b]",
		"//a[b][position() = last()]",
		"a[not(position() = 1)]",
		"a[3 < 4]",
		"self::a[2]",   // singleton axis: folds to a constant
		"parent::a[1]", // singleton axis
		"//*[@x][2]",
	}
	for _, q := range good {
		if err := CheckCounting(parser.MustParse(q)); err != nil {
			t.Errorf("CheckCounting(%q) = %v, want nil", q, err)
		}
	}
	bad := []string{
		"ancestor::a[2]",            // positional on an uncountable axis
		"//a/following-sibling::b[1]",
		"position() = 1",            // positional comparison outside a predicate
		"a[position() + 1 = last()]", // arithmetic over position()
		"count(a)",
		"a[b = 'x']",
		"1 + 2", // number-typed at top level
	}
	for _, q := range bad {
		err := CheckCounting(parser.MustParse(q))
		if !errors.Is(err, counting.ErrNotCounting) {
			t.Errorf("CheckCounting(%q) = %v, want ErrNotCounting", q, err)
		}
		// The stricter Core check must reject these too.
		if err := CheckCore(parser.MustParse(q)); !errors.Is(err, ErrNotCore) {
			t.Errorf("CheckCore(%q) = %v, want ErrNotCore", q, err)
		}
	}
}

func TestBooleanTopLevel(t *testing.T) {
	d, err := xmltree.ParseString("<a><b/><c/></a>")
	if err != nil {
		t.Fatal(err)
	}
	a := d.FindFirstElement("a")
	cases := []struct {
		q    string
		node *xmltree.Node
		want bool
	}{
		{"b and c", a, true},
		{"b and z", a, false},
		{"not(z)", a, true},
		{"b or z", a, true},
		{"boolean(b)", a, true},
		{"/a/b", d.Root, true}, // returns a NodeSet, checked below separately
	}
	for _, tc := range cases[:5] {
		got, err := Evaluate(parser.MustParse(tc.q), evalctx.At(tc.node), nil)
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if got != value.Boolean(tc.want) {
			t.Errorf("%q at %s = %v, want %v", tc.q, tc.node.Name, got, tc.want)
		}
	}
}

func TestLabelConditions(t *testing.T) {
	v1 := xmltree.ElemL("v", []string{"G", "I1"})
	v2 := xmltree.ElemL("v", []string{"G", "O1"})
	root := xmltree.Elem("r", v1, v2)
	d := xmltree.NewDocument(root)
	got, err := Evaluate(parser.MustParse("/r/v[T(O1)]"), evalctx.Root(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	ns := got.(value.NodeSet)
	if len(ns) != 1 || !ns[0].HasLabel("O1") {
		t.Fatalf("got %v", ns)
	}
}

// Cross-engine agreement with cvt on random Core XPath queries over random
// documents — the strongest correctness evidence for the set algebra.
func TestAgreementWithCVTRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for _, profile := range []enginetest.GenProfile{enginetest.GenPF, enginetest.GenPositiveCore, enginetest.GenCore} {
		gen := enginetest.NewQueryGen(rng, profile)
		for trial := 0; trial < 250; trial++ {
			doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
				Nodes: 25, MaxFanout: 3, Tags: []string{"a", "b", "c"}, TextProb: 0.2, AttrProb: 0.2,
			})
			q := gen.Query()
			expr := parser.MustParse(q)
			// Evaluate from several context nodes, not just the root.
			for _, ctxNode := range []*xmltree.Node{doc.Root, doc.Nodes[len(doc.Nodes)/2], doc.Nodes[len(doc.Nodes)-1]} {
				ctx := evalctx.At(ctxNode)
				want, err := cvt.Evaluate(expr, ctx, nil)
				if err != nil {
					t.Fatalf("cvt failed on %q: %v", q, err)
				}
				got, err := Evaluate(expr, ctx, nil)
				if err != nil {
					t.Fatalf("corelinear failed on %q: %v", q, err)
				}
				if !value.Equal(want, got) {
					t.Fatalf("disagreement on %q from #%d:\n cvt:        %v\n corelinear: %v\n doc: %s",
						q, ctxNode.Ord, want, got, doc.XMLString())
				}
			}
		}
	}
}

// TestPositionalAgreementWithCVT checks the counting-fragment
// evaluation against the context-value-table engine — the reference
// for full XPath positional semantics — on the predicate shapes the
// fragment admits, including renumbering after an earlier predicate
// ([b][2] counts among the b-having siblings only).
func TestPositionalAgreementWithCVT(t *testing.T) {
	queries := []string{
		"a[1]",
		"//a[2]",
		"//a[last()]",
		"//a[last()]/b",
		"//b[position() < 3]",
		"//a[position() = 1]/b",
		"//a[position() >= 2][c]",
		"//a[b][2]",
		"//a[b][position() = last()]",
		"//a[b][c][2]",
		"//a[position() > 1][1]",
		"//a[position() = 1 or position() = last()]",
		"//a[not(position() = 1)]",
		"//*[@x][1]",
		"//a/@*[2]",
		"//a[3 < 4]",
		"//a[0]",
		"//a[position() != 2]/c",
		"self::a[1]",
		"//c/parent::a[1]",
		"//a[.//b[2]]",
		"//a[1][2]", // positions renumber: first a, then [2] of that singleton → empty
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 40, MaxFanout: 4, Tags: []string{"a", "b", "c"}, TextProb: 0.2, AttrProb: 0.3,
		})
		for _, q := range queries {
			expr := parser.MustParse(q)
			if err := CheckCounting(expr); err != nil {
				t.Fatalf("CheckCounting(%q) = %v, want nil", q, err)
			}
			for _, ctxNode := range []*xmltree.Node{doc.Root, doc.Nodes[len(doc.Nodes)/2]} {
				ctx := evalctx.At(ctxNode)
				want, err := cvt.Evaluate(expr, ctx, nil)
				if err != nil {
					t.Fatalf("cvt failed on %q: %v", q, err)
				}
				got, err := Evaluate(expr, ctx, nil)
				if err != nil {
					t.Fatalf("corelinear failed on %q: %v", q, err)
				}
				if !value.Equal(want, got) {
					t.Fatalf("disagreement on %q from #%d:\n cvt:        %v\n corelinear: %v\n doc: %s",
						q, ctxNode.Ord, want, got, doc.XMLString())
				}
			}
		}
	}
}

// Linearity: ops grow linearly in |D| for a fixed query and linearly in
// |Q| for a fixed document.
func TestLinearScaling(t *testing.T) {
	q := parser.MustParse("//a[b and not(c/descendant::a)]/following-sibling::b")
	var prev int64
	for _, n := range []int{200, 400, 800} {
		d := xmltree.BalancedDocument(6, 2, []string{"a", "b", "c"})
		_ = n
		ctr := &evalctx.Counter{}
		if _, err := Evaluate(q, evalctx.Root(d), ctr); err != nil {
			t.Fatal(err)
		}
		if prev > 0 && ctr.Ops() != prev {
			t.Fatalf("ops changed for identical doc") // sanity
		}
		prev = ctr.Ops()
	}
	// Growth in |D|.
	var ops []int64
	for _, depth := range []int{5, 6, 7} { // doc size roughly doubles per depth
		d := xmltree.BalancedDocument(depth, 2, []string{"a", "b", "c"})
		ctr := &evalctx.Counter{}
		if _, err := Evaluate(q, evalctx.Root(d), ctr); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, ctr.Ops())
	}
	r1 := float64(ops[1]) / float64(ops[0])
	r2 := float64(ops[2]) / float64(ops[1])
	if r1 > 2.5 || r2 > 2.5 {
		t.Fatalf("ops not linear in |D|: %v", ops)
	}
}

// The inverse-axis property test lives in internal/nodeset; here we keep a
// spot check that backward condition evaluation matches forward semantics
// on a document with attributes (the asymmetric corner).
func TestBackwardConditionsWithAttributes(t *testing.T) {
	d, err := xmltree.ParseString(`<a x="1"><b y="2"><c/></b><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"//b[@y]",
		"//*[@*]",
		"//b[not(@y)]",
		"//*[@y/parent::b]",
	} {
		expr := parser.MustParse(q)
		want, err := cvt.Evaluate(expr, evalctx.Root(d), nil)
		if err != nil {
			t.Fatalf("cvt %q: %v", q, err)
		}
		got, err := Evaluate(expr, evalctx.Root(d), nil)
		if err != nil {
			t.Fatalf("corelinear %q: %v", q, err)
		}
		if !value.Equal(want, got) {
			t.Fatalf("%q: cvt %v vs corelinear %v", q, want, got)
		}
	}
}
