package naive

import (
	"errors"
	"testing"

	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

func engine(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	return Evaluate(expr, ctx, nil)
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, engine, enginetest.FullCaps)
}

func TestConformanceColumnarBackend(t *testing.T) {
	enginetest.RunBackend(t, engine, enginetest.FullCaps, xmltree.BackendColumnar)
}

func TestBackendEquivalence(t *testing.T) {
	enginetest.RunBackendEquivalence(t, "naive", engine, enginetest.FullCaps, enginetest.GenCore)
}

func TestCachedEquivalence(t *testing.T) {
	// Core profile: the naive engine is exponential on the worst of the
	// full-profile generator's outputs, and the cache must be invisible
	// regardless of the fragment.
	enginetest.RunCachedEquivalence(t, "naive", engine, enginetest.FullCaps, enginetest.GenCore)
}

func TestLabelTest(t *testing.T) {
	v := xmltree.ElemL("v", []string{"G", "R"})
	d := xmltree.NewDocument(v)
	got, err := Evaluate(parser.MustParse("/descendant-or-self::*[T(R) and T(G)]"), evalctx.Root(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	ns := got.(value.NodeSet)
	if len(ns) != 1 || ns[0] != d.FindFirstElement("v") {
		t.Fatalf("label query selected %v", ns)
	}
	got, err = Evaluate(parser.MustParse("/descendant-or-self::*[T(X)]"), evalctx.Root(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(value.NodeSet)) != 0 {
		t.Fatal("T(X) should match nothing")
	}
}

// The naive engine's defining property: work grows exponentially with
// query size on parent/child oscillation queries, because intermediate
// results are bags. With k children per parent, each /parent::a/b pair
// multiplies the bag size by k.
func TestExponentialBagBlowup(t *testing.T) {
	d, err := xmltree.ParseString("<a><b/><b/><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	query := "//b"
	var prevOps int64
	var ratios []float64
	for i := 0; i < 5; i++ {
		ctr := &evalctx.Counter{}
		v, err := Evaluate(parser.MustParse(query), evalctx.Root(d), ctr)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.(value.NodeSet)) != 3 {
			t.Fatalf("query %s: got %d nodes, want 3", query, len(v.(value.NodeSet)))
		}
		if prevOps > 0 {
			ratios = append(ratios, float64(ctr.Ops())/float64(prevOps))
		}
		prevOps = ctr.Ops()
		query += "/parent::a/b"
	}
	// The last growth ratio should approach the fanout (3); anything
	// clearly above 2 demonstrates the exponential regime.
	last := ratios[len(ratios)-1]
	if last < 2 {
		t.Errorf("bag blowup ratio = %v, want ≥ 2 (ratios %v)", last, ratios)
	}
}

func TestBudgetAborts(t *testing.T) {
	d, err := xmltree.ParseString("<a><b/><b/><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	q := "//b/parent::a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b"
	ctr := &evalctx.Counter{Budget: 50}
	_, err = Evaluate(parser.MustParse(q), evalctx.Root(d), ctr)
	if !errors.Is(err, evalctx.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestUnionTypeError(t *testing.T) {
	// The parser rejects literal non-node-set unions, so build the AST
	// directly to exercise the evaluator's own guard.
	bad := &ast.Binary{Op: ast.OpUnion, Left: &ast.Number{Val: 1}, Right: &ast.Path{Steps: []*ast.Step{{Axis: ast.AxisChild, Test: ast.NodeTest{Kind: ast.TestStar}}}}}
	d, _ := xmltree.ParseString("<a/>")
	if _, err := Evaluate(bad, evalctx.Root(d), nil); err == nil {
		t.Fatal("union of number should be a type error")
	}
}

func TestShortCircuit(t *testing.T) {
	// 'or' with a true left side must not evaluate the right side: give the
	// right side something that would blow the budget.
	d, _ := xmltree.ParseString("<a><b/><b/><b/></a>")
	expensive := "//b/parent::a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b"
	q := "//b[true() or " + expensive + "]"
	ctr := &evalctx.Counter{Budget: 2000}
	v, err := Evaluate(parser.MustParse(q), evalctx.Root(d), ctr)
	if err != nil {
		t.Fatalf("short-circuit or still evaluated right side: %v", err)
	}
	if len(v.(value.NodeSet)) != 3 {
		t.Fatalf("got %d nodes", len(v.(value.NodeSet)))
	}
}
