// Package naive implements the "standards-document" XPath evaluator: a
// direct recursive interpretation of the XPath 1.0 semantics with no
// sharing of intermediate results.
//
// This is the paper's baseline. Section 1 observes that "all publicly
// available XPath engines ... take time exponential in the sizes of the
// XPath expressions in the input", because they evaluate e1/e2 by
// re-evaluating e2 for every node produced by e1 — over intermediate
// *bags* rather than sets — and re-evaluate conditions at every context
// with no memoization. This package reproduces exactly that behaviour
// (including bag semantics for intermediate location-step results), so the
// benchmarks can exhibit the exponential-vs-polynomial separation against
// the cvt engine (EXP-F1, EXP-T32).
//
// Results are still correct XPath results: bags are normalized to sets at
// every point where a node-set value is observed.
package naive

import (
	"fmt"

	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/funcs"
	"xpathcomplexity/internal/obs"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// Options configures an evaluation.
type Options struct {
	// Counter, when non-nil, is bumped once per subexpression visit and
	// once per node touched in a location step; give it a Budget to cut
	// off exponential runs.
	Counter *evalctx.Counter
	// Tracer, when non-nil, receives enter/exit events for every
	// (subexpression, context) visit.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives engine.naive.* totals.
	Metrics *obs.Metrics
	// Guard, when non-nil, enforces cancellation, the op budget, the
	// recursion-depth limit and the node-set cardinality limit. It is
	// charged in lockstep with Counter, so its MaxOps uses the same units
	// as Counter.Budget.
	Guard *evalctx.Guard
}

// Evaluate evaluates expr in the given context. The counter (optional) is
// bumped once per subexpression visit and once per node touched in a
// location step; give it a Budget to cut off exponential runs.
func Evaluate(expr ast.Expr, ctx evalctx.Context, ctr *evalctx.Counter) (value.Value, error) {
	return EvaluateOptions(expr, ctx, Options{Counter: ctr})
}

// EvaluateOptions evaluates expr in the given context with full options.
func EvaluateOptions(expr ast.Expr, ctx evalctx.Context, opts Options) (value.Value, error) {
	ctr := opts.Counter
	if ctr == nil && (opts.Metrics != nil || opts.Tracer != nil) {
		// Instrumentation needs a counter to measure op deltas; synthesize
		// a private one so metrics reconcile even without a caller counter.
		ctr = new(evalctx.Counter)
	}
	e := &evaluator{ctr: ctr, tr: opts.Tracer, guard: opts.Guard}
	start := ctr.Ops()
	v, err := e.eval(expr, ctx)
	if m := opts.Metrics; m != nil {
		m.Counter("engine.naive.ops").Add(ctr.Ops() - start)
		m.Counter("engine.naive.evals").Inc()
	}
	return v, err
}

type evaluator struct {
	ctr   *evalctx.Counter
	tr    *obs.Tracer
	guard *evalctx.Guard
}

// charge bumps the counter and the guard by the same n, so the guard's
// op budget is denominated exactly like Counter.Budget.
func (e *evaluator) charge(n int64) error {
	if err := e.ctr.Step(n); err != nil {
		return err
	}
	if e.guard != nil {
		return e.guard.Step(n)
	}
	return nil
}

func (e *evaluator) eval(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if g := e.guard; g != nil {
		if err := g.Enter(); err != nil {
			return nil, err
		}
		defer g.Exit()
	}
	if e.tr == nil {
		return e.evalInner(expr, ctx)
	}
	sp := e.tr.Enter(expr, ctx, e.ctr)
	v, err := e.evalInner(expr, ctx)
	e.tr.Exit(sp, v, e.ctr)
	return v, err
}

func (e *evaluator) evalInner(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if err := e.charge(1); err != nil {
		return nil, err
	}
	switch x := expr.(type) {
	case *ast.Path:
		bag, err := e.evalPath(x, ctx)
		if err != nil {
			return nil, err
		}
		return value.NewNodeSet(bag...), nil
	case *ast.Binary:
		return e.evalBinary(x, ctx)
	case *ast.Unary:
		v, err := e.eval(x.Operand, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(-value.ToNumber(v)), nil
	case *ast.Call:
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := e.eval(a, ctx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return funcs.Call(x.Name, ctx, args)
	case *ast.Number:
		return value.Number(x.Val), nil
	case *ast.Literal:
		return value.String(x.Val), nil
	case *ast.LabelTest:
		return value.Boolean(ctx.Node != nil && ctx.Node.HasLabel(x.Label)), nil
	default:
		return nil, fmt.Errorf("naive: unsupported expression %T", expr)
	}
}

func (e *evaluator) evalBinary(b *ast.Binary, ctx evalctx.Context) (value.Value, error) {
	switch {
	case b.Op == ast.OpOr || b.Op == ast.OpAnd:
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		lb := value.ToBoolean(l)
		// Short-circuit, as the recommendation permits.
		if b.Op == ast.OpOr && lb {
			return value.Boolean(true), nil
		}
		if b.Op == ast.OpAnd && !lb {
			return value.Boolean(false), nil
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return value.Boolean(value.ToBoolean(r)), nil
	case b.Op == ast.OpUnion:
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		ln, ok1 := l.(value.NodeSet)
		rn, ok2 := r.(value.NodeSet)
		if !ok1 || !ok2 {
			return nil, &evalctx.TypeError{Op: "union", Want: "node-set", Got: fmt.Sprintf("%s | %s", l.Kind(), r.Kind())}
		}
		return ln.Union(rn), nil
	case b.Op.IsRelational():
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return value.Boolean(value.Compare(b.Op, l, r)), nil
	default: // arithmetic
		l, err := e.eval(b.Left, ctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(b.Right, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(value.Arith(b.Op, value.ToNumber(l), value.ToNumber(r))), nil
	}
}

// evalPath evaluates a location path to a *bag* of nodes (duplicates
// preserved between steps — the historical engine behaviour).
func (e *evaluator) evalPath(p *ast.Path, ctx evalctx.Context) ([]*xmltree.Node, error) {
	var cur []*xmltree.Node
	if p.Absolute {
		if ctx.Node == nil {
			return nil, fmt.Errorf("naive: absolute path with no context document")
		}
		cur = []*xmltree.Node{ctx.Node.Document().Root}
	} else {
		cur = []*xmltree.Node{ctx.Node}
	}
	for _, step := range p.Steps {
		var next []*xmltree.Node
		for _, n := range cur {
			sel := axes.SelectProximity(step.Axis, step.Test, n)
			if err := e.charge(int64(len(sel) + 1)); err != nil {
				return nil, err
			}
			for _, pred := range step.Preds {
				filtered, err := e.filterPredicate(sel, pred)
				if err != nil {
					return nil, err
				}
				sel = filtered
			}
			next = append(next, sel...)
			// The intermediate bag is where the exponential blow-up
			// materializes (Section 3); cap its cardinality.
			if e.guard != nil {
				if err := e.guard.CheckNodeSet(len(next)); err != nil {
					return nil, err
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// filterPredicate applies one predicate to a proximity-ordered selection,
// implementing the numeric-predicate shorthand ([2] ≡ [position()=2]).
func (e *evaluator) filterPredicate(sel []*xmltree.Node, pred ast.Expr) ([]*xmltree.Node, error) {
	out := make([]*xmltree.Node, 0, len(sel))
	size := len(sel)
	for i, n := range sel {
		pctx := evalctx.Context{Node: n, Pos: i + 1, Size: size}
		v, err := e.eval(pred, pctx)
		if err != nil {
			return nil, err
		}
		keep := false
		if num, isNum := v.(value.Number); isNum {
			keep = float64(num) == float64(i+1)
		} else {
			keep = value.ToBoolean(v)
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}
