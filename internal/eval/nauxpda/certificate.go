package nauxpda

import (
	"fmt"
	"strings"

	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// A Derivation is an accepting certificate of the Singleton-Success
// decision procedure: the tree of Table 1 rows (with their instantiated
// guesses) that witnesses membership. This is the object whose
// polynomial size underlies LOGCFL ⊆ P — Certificate makes it printable
// so users can see *why* a node is in a query's result.
type Derivation struct {
	// Rule is the Table 1 row (or extension) applied, e.g. "π1/π2".
	Rule string
	// Detail instantiates the rule: which nodes, positions, sizes.
	Detail string
	// Children are the sub-derivations the rule depends on.
	Children []*Derivation
}

// String renders the derivation as an indented proof tree.
func (d *Derivation) String() string {
	var b strings.Builder
	d.render(&b, 0)
	return b.String()
}

func (d *Derivation) render(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%-8s %s\n", strings.Repeat("  ", depth), d.Rule, d.Detail)
	for _, c := range d.Children {
		c.render(b, depth+1)
	}
}

// Size counts derivation nodes (certificate size).
func (d *Derivation) Size() int {
	n := 1
	for _, c := range d.Children {
		n += c.Size()
	}
	return n
}

// Certificate produces the accepting derivation for "node r is selected
// by expr evaluated at ctx", or reports that none exists. The query must
// lie in the fragment the nauxpda engine accepts.
func Certificate(expr ast.Expr, ctx evalctx.Context, r *xmltree.Node, opts Options) (*Derivation, bool, error) {
	expr, err := prepare(expr, opts)
	if err != nil {
		return nil, false, err
	}
	if ast.StaticType(expr) != ast.TypeNodeSet {
		return nil, false, fmt.Errorf("nauxpda: Certificate explains node-set membership; query is %v-typed", ast.StaticType(expr))
	}
	c := newChecker(ctx, opts)
	d := &deriver{checker: c}
	der, ok, err := d.holdsExpr(expr, ctx.Node, r)
	if err != nil {
		return nil, false, err
	}
	return der, ok, nil
}

// deriver mirrors the checker's judgments but records the instantiated
// Table 1 rows of the accepting run. It reuses the memoized checker for
// search (finding witnesses cheaply) and only rebuilds derivations along
// the accepting path, so certificate extraction stays polynomial.
type deriver struct {
	checker *checker
}

func nodeRef(n *xmltree.Node) string {
	if n == nil {
		return "⊥"
	}
	switch n.Type {
	case xmltree.RootNode:
		return "root"
	case xmltree.AttributeNode:
		return fmt.Sprintf("@%s#%d", n.Name, n.Ord)
	case xmltree.TextNode:
		return fmt.Sprintf("text#%d", n.Ord)
	default:
		return fmt.Sprintf("<%s>#%d", n.Name, n.Ord)
	}
}

func (d *deriver) holdsExpr(expr ast.Expr, n, r *xmltree.Node) (*Derivation, bool, error) {
	switch x := expr.(type) {
	case *ast.Path:
		return d.holdsPath(x, n, r)
	case *ast.Binary:
		if x.Op != ast.OpUnion {
			return nil, false, fmt.Errorf("nauxpda: %v is not a node-set expression", x.Op)
		}
		// Row π1|π2: pick the accepting branch.
		if der, ok, err := d.holdsExpr(x.Left, n, r); err != nil || ok {
			if ok {
				return &Derivation{Rule: "π1|π2", Detail: fmt.Sprintf("left branch selects %s", nodeRef(r)), Children: []*Derivation{der}}, true, err
			}
			return nil, false, err
		}
		der, ok, err := d.holdsExpr(x.Right, n, r)
		if err != nil || !ok {
			return nil, false, err
		}
		return &Derivation{Rule: "π1|π2", Detail: fmt.Sprintf("right branch selects %s", nodeRef(r)), Children: []*Derivation{der}}, true, nil
	default:
		return nil, false, fmt.Errorf("nauxpda: unsupported node-set expression %T", expr)
	}
}

func (d *deriver) holdsPath(p *ast.Path, n, r *xmltree.Node) (*Derivation, bool, error) {
	if p.Absolute {
		root := d.checker.doc.Root
		der, ok, err := d.holdsSteps(p, 0, root, r)
		if err != nil || !ok {
			if p.Absolute && len(p.Steps) == 0 {
				return &Derivation{Rule: "/π", Detail: "bare '/' selects the root"}, r == root, nil
			}
			return nil, false, err
		}
		return &Derivation{Rule: "/π", Detail: "n := root", Children: []*Derivation{der}}, true, nil
	}
	return d.holdsSteps(p, 0, n, r)
}

func (d *deriver) holdsSteps(p *ast.Path, i int, n, r *xmltree.Node) (*Derivation, bool, error) {
	if len(p.Steps) == 0 {
		return nil, false, fmt.Errorf("nauxpda: empty path")
	}
	step := p.Steps[i]
	if i == len(p.Steps)-1 {
		return d.holdsStep(step, n, r)
	}
	// Row π1/π2: find the accepting intermediate with the memoized
	// checker, then derive both halves.
	for _, mid := range d.checker.doc.Nodes {
		ok, err := d.checker.holdsStep(step, n, mid)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		ok, err = d.checker.holdsSteps(p, i+1, mid, r)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		left, _, err := d.holdsStep(step, n, mid)
		if err != nil {
			return nil, false, err
		}
		right, _, err := d.holdsSteps(p, i+1, mid, r)
		if err != nil {
			return nil, false, err
		}
		return &Derivation{
			Rule:     "π1/π2",
			Detail:   fmt.Sprintf("intermediate r1 := %s", nodeRef(mid)),
			Children: []*Derivation{left, right},
		}, true, nil
	}
	return nil, false, nil
}

func (d *deriver) holdsStep(step *ast.Step, n, r *xmltree.Node) (*Derivation, bool, error) {
	if !axes.ReachableTest(step.Axis, step.Test, n, r) {
		return nil, false, nil
	}
	if len(step.Preds) == 0 {
		return &Derivation{
			Rule:   "χ::t",
			Detail: fmt.Sprintf("%s reachable from %s via %s::%s", nodeRef(r), nodeRef(n), step.Axis, step.Test),
		}, true, nil
	}
	pred := step.Preds[0]
	pos, size := axes.CountSelect(step.Axis, step.Test, n, r)
	pctx := evalctx.Context{Node: r, Pos: pos, Size: size}
	ok, err := d.checker.predicate(pred, pctx)
	if err != nil || !ok {
		return nil, false, err
	}
	child, err := d.truth(pred, pctx)
	if err != nil {
		return nil, false, err
	}
	return &Derivation{
		Rule: "χ::t[e]",
		Detail: fmt.Sprintf("%s ∈ Y = %s::%s(%s) at position %d of %d; predicate holds",
			nodeRef(r), step.Axis, step.Test, nodeRef(n), pos, size),
		Children: []*Derivation{child},
	}, true, nil
}

// truth derives the boolean rows; it is only called on predicates already
// known to hold.
func (d *deriver) truth(expr ast.Expr, ctx evalctx.Context) (*Derivation, error) {
	ctxStr := fmt.Sprintf("at (%s, %d, %d)", nodeRef(ctx.Node), ctx.Pos, ctx.Size)
	switch x := expr.(type) {
	case *ast.Binary:
		switch {
		case x.Op == ast.OpAnd:
			l, err := d.truth(x.Left, ctx)
			if err != nil {
				return nil, err
			}
			r, err := d.truth(x.Right, ctx)
			if err != nil {
				return nil, err
			}
			return &Derivation{Rule: "e1∧e2", Detail: ctxStr, Children: []*Derivation{l, r}}, nil
		case x.Op == ast.OpOr:
			if ok, err := d.checker.truthOrExists(x.Left, ctx); err == nil && ok {
				l, err := d.truth(x.Left, ctx)
				if err != nil {
					return nil, err
				}
				return &Derivation{Rule: "e1∨e2", Detail: "left disjunct " + ctxStr, Children: []*Derivation{l}}, nil
			}
			r, err := d.truth(x.Right, ctx)
			if err != nil {
				return nil, err
			}
			return &Derivation{Rule: "e1∨e2", Detail: "right disjunct " + ctxStr, Children: []*Derivation{r}}, nil
		case x.Op == ast.OpUnion:
			return d.exists(x, ctx)
		case x.Op.IsRelational():
			return &Derivation{Rule: "RelOp", Detail: fmt.Sprintf("%s holds %s", x, ctxStr)}, nil
		default:
			return nil, fmt.Errorf("nauxpda: %v in boolean position", x.Op)
		}
	case *ast.Call:
		switch x.Name {
		case "boolean":
			return d.truth(x.Args[0], ctx)
		case "not":
			return &Derivation{Rule: "not(e)", Detail: fmt.Sprintf("complement check: %s is false %s (Theorem 5.9 loop)", x.Args[0], ctxStr)}, nil
		case "true":
			return &Derivation{Rule: "true()", Detail: ctxStr}, nil
		case "contains", "starts-with":
			return &Derivation{Rule: x.Name + "()", Detail: fmt.Sprintf("%s holds %s", x, ctxStr)}, nil
		default:
			return nil, fmt.Errorf("nauxpda: function %q in certificate", x.Name)
		}
	case *ast.LabelTest:
		return &Derivation{Rule: "T(l)", Detail: fmt.Sprintf("%s carries label %s", nodeRef(ctx.Node), x.Label)}, nil
	case *ast.Path:
		return d.exists(x, ctx)
	default:
		return nil, fmt.Errorf("nauxpda: unsupported boolean expression %T in certificate", expr)
	}
}

// exists derives the boolean(π) row by exhibiting the witness node.
func (d *deriver) exists(expr ast.Expr, ctx evalctx.Context) (*Derivation, error) {
	for _, r := range d.checker.doc.Nodes {
		ok, err := d.checker.holdsExpr(expr, ctx.Node, r)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		child, _, err := d.holdsExpr(expr, ctx.Node, r)
		if err != nil {
			return nil, err
		}
		return &Derivation{
			Rule:     "boolean(π)",
			Detail:   fmt.Sprintf("witness r1 := %s", nodeRef(r)),
			Children: []*Derivation{child},
		}, nil
	}
	return nil, fmt.Errorf("nauxpda: exists-derivation requested for a false condition")
}

// WhyMember is a convenience wrapper: it renders the certificate for node
// membership, or explains the absence of one.
func WhyMember(expr ast.Expr, ctx evalctx.Context, r *xmltree.Node, opts Options) (string, error) {
	der, ok, err := Certificate(expr, ctx, r, opts)
	if err != nil {
		return "", err
	}
	if !ok {
		// Sanity: agree with the decision procedure.
		member, err := SingletonSuccess(expr, ctx, value.NewNodeSet(r), opts)
		if err != nil {
			return "", err
		}
		if member {
			return "", fmt.Errorf("nauxpda: internal disagreement between Certificate and SingletonSuccess")
		}
		return fmt.Sprintf("%s is NOT selected: no consistent certificate exists (every guess fails some Table 1 check)\n", nodeRef(r)), nil
	}
	return fmt.Sprintf("%s IS selected; accepting certificate (%d Table 1 rows):\n%s", nodeRef(r), der.Size(), der), nil
}
