package nauxpda

import (
	"errors"
	"math/rand"
	"testing"

	"xpathcomplexity/internal/eval/cvt"
	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

func engine(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	return Evaluate(expr, ctx, Options{Limits: Limits{NegationDepth: 8}})
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, engine, enginetest.PXPathCaps)
}

func TestCachedEquivalence(t *testing.T) {
	// The harness skips queries this engine rejects cold (pXPath
	// fragment limits), so the pWF generator keeps most of them in play.
	enginetest.RunCachedEquivalence(t, "nauxpda", engine, enginetest.PXPathCaps, enginetest.GenPWF)
}

func TestConformanceColumnarBackend(t *testing.T) {
	enginetest.RunBackend(t, engine, enginetest.PXPathCaps, xmltree.BackendColumnar)
}

func TestBackendEquivalence(t *testing.T) {
	enginetest.RunBackendEquivalence(t, "nauxpda", engine, enginetest.PXPathCaps, enginetest.GenPWF)
}

func TestFragmentCheck(t *testing.T) {
	cases := []struct {
		q       string
		lim     Limits
		wantErr error
	}{
		{"a[b][c]", Limits{}, ErrIteratedPredicates},
		{"a[not(b)]", Limits{}, ErrNegationDepth},
		{"a[not(b)]", Limits{NegationDepth: 1}, nil},
		{"a[not(b[not(c)])]", Limits{NegationDepth: 1}, ErrNegationDepth},
		{"a[not(b[not(c)])]", Limits{NegationDepth: 2}, nil},
		{"count(a)", Limits{}, ErrForbiddenFunction},
		{"a[sum(b) > 1]", Limits{}, ErrForbiddenFunction},
		{"string(a)", Limits{}, ErrForbiddenFunction},
		{"a[string-length(b) = 1]", Limits{}, ErrForbiddenFunction},
		{"a[normalize-space(b) = 'x']", Limits{}, ErrForbiddenFunction},
		{"a[b = true()]", Limits{}, ErrBooleanRelOp},
		{"a[(b and c) != true()]", Limits{}, ErrBooleanRelOp},
		{"a[1+1+1+1 = 4]", Limits{ArithDepth: 2}, ErrArithDepth},
		{"a[1+1+1+1 = 4]", Limits{ArithDepth: 4}, nil},
		{"a[position() = last()]", Limits{}, nil},
		{"a[b and c or d]", Limits{}, nil},
		{"a[contains(b, 'x')]", Limits{}, nil},
	}
	for _, tc := range cases {
		err := Check(parser.MustParse(tc.q), tc.lim)
		if tc.wantErr == nil && err != nil {
			t.Errorf("Check(%q, %+v) = %v, want nil", tc.q, tc.lim, err)
		}
		if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
			t.Errorf("Check(%q, %+v) = %v, want %v", tc.q, tc.lim, err, tc.wantErr)
		}
	}
}

// One unit test per row of Table 1 (EXP-T1). Each exercises exactly the
// local consistency condition of that row through SingletonSuccess.
func TestTable1Rows(t *testing.T) {
	d, err := xmltree.ParseString(`<a><b>5</b><b>7</b><c><b>9</b></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	a := d.FindFirstElement("a")
	bs := d.FindAll(func(n *xmltree.Node) bool { return n.Name == "b" })
	c := d.FindFirstElement("c")
	check := func(q string, ctx evalctx.Context, v value.Value, want bool) {
		t.Helper()
		got, err := SingletonSuccess(parser.MustParse(q), ctx, v, Options{Limits: Limits{NegationDepth: 2}})
		if err != nil {
			t.Fatalf("SingletonSuccess(%q): %v", q, err)
		}
		if got != want {
			t.Errorf("SingletonSuccess(%q, %v) = %v, want %v", q, v, got, want)
		}
	}
	one := func(n *xmltree.Node) value.Value { return value.NewNodeSet(n) }
	// Row χ::t (leaf): r reachable from n via χ::t.
	check("child::b", evalctx.At(a), one(bs[0]), true)
	check("child::b", evalctx.At(a), one(bs[2]), false) // b under c, not a child of a
	// Row position(): r = p.
	check("position()", evalctx.Context{Node: a, Pos: 3, Size: 9}, value.Number(3), true)
	check("position()", evalctx.Context{Node: a, Pos: 3, Size: 9}, value.Number(4), false)
	// Row last(): r = s.
	check("last()", evalctx.Context{Node: a, Pos: 3, Size: 9}, value.Number(9), true)
	// Row constant.
	check("3.5", evalctx.At(a), value.Number(3.5), true)
	check("3.5", evalctx.At(a), value.Number(3), false)
	// Row /π: n = root ∧ r = r1.
	check("/a/c", evalctx.At(bs[0]), one(c), true)
	// Row π1|π2.
	check("child::b | child::c", evalctx.At(a), one(c), true)
	check("child::b | child::c", evalctx.At(a), one(bs[1]), true)
	// Row π1/π2: intermediate node guessed.
	check("child::c/child::b", evalctx.At(a), one(bs[2]), true)
	check("child::c/child::b", evalctx.At(a), one(bs[0]), false)
	// Row χ::t[e]: position/size of r within Y.
	check("child::b[position() = 2]", evalctx.At(a), one(bs[1]), true)
	check("child::b[position() = 2]", evalctx.At(a), one(bs[0]), false)
	check("child::b[last() = 2]", evalctx.At(a), one(bs[0]), true)
	// Row boolean(π): r = true ∧ r1 ∈ dom.
	check("boolean(child::c)", evalctx.At(a), value.Boolean(true), true)
	// Row e1 and e2 / e1 or e2.
	check("boolean(child::b) and boolean(child::c)", evalctx.At(a), value.Boolean(true), true)
	check("boolean(child::zz) or boolean(child::c)", evalctx.At(a), value.Boolean(true), true)
	// Row e1 RelOp e2 (both numbers).
	check("1 + 1 < 3", evalctx.At(a), value.Boolean(true), true)
	// Row e1 ArithOp e2.
	check("2 * 3 + 1", evalctx.At(a), value.Number(7), true)
	check("7 div 2", evalctx.At(a), value.Number(3.5), true)
}

// Boolean false results are decided via the complement (Theorem 5.5 /
// Proposition 2.4): Evaluate returns Boolean(false) and
// SingletonSuccess(true) returns false.
func TestBooleanComplement(t *testing.T) {
	d, _ := xmltree.ParseString("<a><b/></a>")
	a := d.FindFirstElement("a")
	q := parser.MustParse("boolean(child::zz)")
	got, err := Evaluate(q, evalctx.At(a), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != value.Boolean(false) {
		t.Fatalf("Evaluate = %v", got)
	}
	ok, err := SingletonSuccess(q, evalctx.At(a), value.Boolean(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("SingletonSuccess(true) should fail for a false query")
	}
}

// Agreement with cvt on random pWF queries (EXP-T1 property part).
func TestAgreementWithCVTRandomPWF(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for _, profile := range []enginetest.GenProfile{enginetest.GenPF, enginetest.GenPositiveCore, enginetest.GenPWF} {
		gen := enginetest.NewQueryGen(rng, profile)
		for trial := 0; trial < 150; trial++ {
			doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
				Nodes: 15, MaxFanout: 3, Tags: []string{"a", "b", "c"}, TextProb: 0.2,
			})
			q := gen.Query()
			expr := parser.MustParse(q)
			ctx := evalctx.Root(doc)
			want, err := cvt.Evaluate(expr, ctx, nil)
			if err != nil {
				t.Fatalf("cvt failed on %q: %v", q, err)
			}
			got, err := Evaluate(expr, ctx, Options{})
			if err != nil {
				t.Fatalf("nauxpda failed on %q: %v", q, err)
			}
			if !value.Equal(want, got) {
				t.Fatalf("disagreement on %q:\n cvt:     %v\n nauxpda: %v\n doc: %s",
					q, want, got, doc.XMLString())
			}
		}
	}
}

// Agreement with cvt on bounded-negation queries (Theorem 5.9).
func TestBoundedNegationAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	gen := enginetest.NewQueryGen(rng, enginetest.GenCore)
	checked := 0
	for trial := 0; trial < 400 && checked < 120; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 12, MaxFanout: 3, Tags: []string{"a", "b", "c"},
		})
		q := gen.Query()
		expr := parser.MustParse(q)
		if ast.NegationDepth(expr) == 0 {
			continue
		}
		checked++
		ctx := evalctx.Root(doc)
		want, err := cvt.Evaluate(expr, ctx, nil)
		if err != nil {
			t.Fatalf("cvt failed on %q: %v", q, err)
		}
		got, err := Evaluate(expr, ctx, Options{Limits: Limits{NegationDepth: 8}})
		if err != nil {
			t.Fatalf("nauxpda failed on %q: %v", q, err)
		}
		if !value.Equal(want, got) {
			t.Fatalf("disagreement on %q:\n cvt:     %v\n nauxpda: %v\n doc: %s",
				q, want, got, doc.XMLString())
		}
	}
	if checked < 50 {
		t.Fatalf("only %d negation queries generated", checked)
	}
}

// The memo is what keeps the certificate search polynomial: with it
// disabled, the same query costs strictly more operations on a chain
// document (and exponentially more as the chain grows).
func TestMemoMatters(t *testing.T) {
	d := xmltree.ChainDocument(10, "a")
	// A chain of descendant steps: the same holds(steps[i:], mid, r)
	// judgment is reached through many intermediate guesses, so the
	// certificate DAG has massive sharing.
	q := parser.MustParse("descendant::a/descendant::a/descendant::a/descendant::a")
	ctx := evalctx.Root(d)
	withMemo := &evalctx.Counter{}
	if _, err := Evaluate(q, ctx, Options{Counter: withMemo}); err != nil {
		t.Fatal(err)
	}
	without := &evalctx.Counter{}
	if _, err := Evaluate(q, ctx, Options{Counter: without, DisableMemo: true}); err != nil {
		t.Fatal(err)
	}
	if without.Ops() <= withMemo.Ops() {
		t.Fatalf("memo should reduce ops: with=%d without=%d", withMemo.Ops(), without.Ops())
	}
}

// Certificate-space size sanity: the memo tables stay polynomial —
// bounded by |Q| · |D|² entries for holds.
func TestCertificateSpacePolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 30, MaxFanout: 3})
	expr := parser.MustParse("//a[b and descendant::c]/following::b[position() < 3]")
	e := newChecker(evalctx.Root(doc), Options{})
	for _, r := range doc.Nodes {
		if _, err := e.holdsExpr(expr, doc.Root, r); err != nil {
			t.Fatal(err)
		}
	}
	qSize := ast.Size(expr)
	dSize := len(doc.Nodes)
	bound := qSize * dSize * dSize
	if len(e.holdsMemo) > bound {
		t.Fatalf("holds memo has %d entries, bound %d", len(e.holdsMemo), bound)
	}
}

func TestSingletonSuccessNodeMembership(t *testing.T) {
	d, _ := xmltree.ParseString("<a><b/><c/></a>")
	b := d.FindFirstElement("b")
	c := d.FindFirstElement("c")
	q := parser.MustParse("/a/b")
	ok, err := SingletonSuccess(q, evalctx.Root(d), value.NewNodeSet(b), Options{})
	if err != nil || !ok {
		t.Fatalf("b should be in /a/b: %v %v", ok, err)
	}
	ok, err = SingletonSuccess(q, evalctx.Root(d), value.NewNodeSet(c), Options{})
	if err != nil || ok {
		t.Fatalf("c should not be in /a/b: %v %v", ok, err)
	}
}

func TestEvaluateRejectsOutOfFragment(t *testing.T) {
	d, _ := xmltree.ParseString("<a/>")
	if _, err := Evaluate(parser.MustParse("//a[b][c]"), evalctx.Root(d), Options{}); !errors.Is(err, ErrIteratedPredicates) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Evaluate(parser.MustParse("count(//a)"), evalctx.Root(d), Options{}); !errors.Is(err, ErrForbiddenFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestStringOperations(t *testing.T) {
	d, _ := xmltree.ParseString(`<a><b>hello</b><c>world</c></a>`)
	ctx := evalctx.Root(d)
	cases := []struct {
		q    string
		want value.Value
	}{
		{"concat('x', 'y')", value.String("xy")},
		{"substring('12345', 2, 3)", value.String("234")},
		{"substring-before('a-b', '-')", value.String("a")},
		{"substring-after('a-b', '-')", value.String("b")},
		{"translate('abc', 'ab', 'xy')", value.String("xyc")},
	}
	for _, tc := range cases {
		got, err := Evaluate(parser.MustParse(tc.q), ctx, Options{})
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if !value.Equal(got, tc.want) {
			t.Errorf("%q = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Node-set argument to a boolean string function.
	got, err := Evaluate(parser.MustParse("//a[contains(b, 'ell')]"), ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(value.NodeSet)) != 1 {
		t.Fatalf("contains(node-set) = %v", got)
	}
}

// NormalizeNegation (the de Morgan preprocessing of the Theorem 5.9
// proof) lets queries whose raw negation depth exceeds the bound pass
// after double negations cancel — without changing semantics.
func TestNormalizeNegationWidensAcceptance(t *testing.T) {
	d, _ := xmltree.ParseString("<a><b/><c/></a>")
	ctx := evalctx.Root(d)
	q := parser.MustParse("//a[not(not(b))]") // raw depth 2
	if _, err := Evaluate(q, ctx, Options{Limits: Limits{NegationDepth: 0}}); err == nil {
		t.Fatal("raw depth-2 negation should be rejected at bound 0")
	}
	got, err := Evaluate(q, ctx, Options{Limits: Limits{NegationDepth: 0}, NormalizeNegation: true})
	if err != nil {
		t.Fatalf("normalized query rejected: %v", err)
	}
	want, err := cvt.Evaluate(q, ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("normalized evaluation differs: %v vs %v", got, want)
	}
	// A numeric RelOp under not() flips instead of counting as negation.
	q2 := parser.MustParse("//a/b[not(position() = 2)]")
	got2, err := Evaluate(q2, ctx, Options{Limits: Limits{NegationDepth: 0}, NormalizeNegation: true})
	if err != nil {
		t.Fatalf("flipped RelOp rejected: %v", err)
	}
	want2, _ := cvt.Evaluate(q2, ctx, nil)
	if !value.Equal(got2, want2) {
		t.Fatalf("flipped RelOp differs: %v vs %v", got2, want2)
	}
}

// NormalizeNegation agrees with cvt on random Core XPath queries even at
// a generous bound (the normal form never increases depth).
func TestNormalizeNegationAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	gen := enginetest.NewQueryGen(rng, enginetest.GenCore)
	for trial := 0; trial < 120; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 12, MaxFanout: 3, Tags: []string{"a", "b", "c"},
		})
		q := gen.Query()
		expr := parser.MustParse(q)
		ctx := evalctx.Root(doc)
		want, err := cvt.Evaluate(expr, ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(expr, ctx, Options{Limits: Limits{NegationDepth: 10}, NormalizeNegation: true})
		if err != nil {
			t.Fatalf("nauxpda(normalized) failed on %q: %v", q, err)
		}
		if !value.Equal(want, got) {
			t.Fatalf("disagreement on %q:\n cvt: %v\n pda: %v\n doc: %s", q, want, got, doc.XMLString())
		}
	}
}

// SingletonSuccess over every result type of Definition 5.3.
func TestSingletonSuccessResultTypes(t *testing.T) {
	d, _ := xmltree.ParseString("<a><b>hi</b></a>")
	a := d.FindFirstElement("a")
	ctx := evalctx.Context{Node: a, Pos: 2, Size: 3}
	// Number instances.
	ok, err := SingletonSuccess(parser.MustParse("position() + last()"), ctx, value.Number(5), Options{})
	if err != nil || !ok {
		t.Fatalf("number instance: %v %v", ok, err)
	}
	ok, err = SingletonSuccess(parser.MustParse("position()"), ctx, value.Number(9), Options{})
	if err != nil || ok {
		t.Fatalf("wrong number accepted: %v %v", ok, err)
	}
	// String instances.
	ok, err = SingletonSuccess(parser.MustParse("concat('h', 'i')"), ctx, value.String("hi"), Options{})
	if err != nil || !ok {
		t.Fatalf("string instance: %v %v", ok, err)
	}
	ok, err = SingletonSuccess(parser.MustParse("substring-after('a-b', '-')"), ctx, value.String("a"), Options{})
	if err != nil || ok {
		t.Fatalf("wrong string accepted: %v %v", ok, err)
	}
	// Type mismatches are errors, not false.
	if _, err := SingletonSuccess(parser.MustParse("position()"), ctx, value.String("2"), Options{}); err == nil {
		t.Error("number query vs string instance should error")
	}
	if _, err := SingletonSuccess(parser.MustParse("concat('a','b')"), ctx, value.Number(1), Options{}); err == nil {
		t.Error("string query vs number instance should error")
	}
	if _, err := SingletonSuccess(parser.MustParse("child::b"), ctx, value.Number(1), Options{}); err == nil {
		t.Error("node-set query vs number instance should error")
	}
}

// The numeric judgment across every arithmetic shape, including node-set
// operands in relational operators via the string-value route.
func TestNumericAndStringJudgments(t *testing.T) {
	d, _ := xmltree.ParseString("<a><n>4</n><n>9</n><s>abc</s></a>")
	ctx := evalctx.Root(d)
	cases := []struct {
		q    string
		want value.Value
	}{
		{"floor(7 div 2)", value.Number(3)},
		{"ceiling(7 div 2)", value.Number(4)},
		{"round(2.5)", value.Number(3)},
		{"//a[n > 8]", nil}, // checked below as nonempty
	}
	for _, tc := range cases[:3] {
		got, err := Evaluate(parser.MustParse(tc.q), ctx, Options{})
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if !value.Equal(got, tc.want) {
			t.Errorf("%q = %v, want %v", tc.q, got, tc.want)
		}
	}
	got, err := Evaluate(parser.MustParse("//a[n > 8]"), ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(value.NodeSet)) != 1 {
		t.Fatalf("node-set RelOp: %v", got)
	}
	// Node-set vs node-set relational comparison (double existential).
	got, err = Evaluate(parser.MustParse("//a[n < n]"), ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(value.NodeSet)) != 1 { // 4 < 9
		t.Fatalf("set-vs-set RelOp: %v", got)
	}
	// String-typed node-set argument conversion (first node in doc order).
	got, err = Evaluate(parser.MustParse("//a[starts-with(s, 'ab')]"), ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(value.NodeSet)) != 1 {
		t.Fatalf("starts-with on node-set: %v", got)
	}
}
