package nauxpda

import (
	"math/rand"
	"strings"
	"testing"

	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

func TestCertificateBasic(t *testing.T) {
	d, err := xmltree.ParseString(`<a><b>5</b><b>7</b><c><b>9</b></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	bs := d.FindAll(func(n *xmltree.Node) bool { return n.Name == "b" })
	expr := parser.MustParse("/a/c/b")
	der, ok, err := Certificate(expr, evalctx.Root(d), bs[2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("b under c should be selected")
	}
	s := der.String()
	for _, want := range []string{"/π", "π1/π2", "χ::t", "intermediate"} {
		if !strings.Contains(s, want) {
			t.Errorf("certificate missing %q:\n%s", want, s)
		}
	}
	// A non-member yields no certificate.
	_, ok, err = Certificate(expr, evalctx.Root(d), bs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("first b should not be selected by /a/c/b")
	}
}

func TestCertificateWithPredicates(t *testing.T) {
	d, err := xmltree.ParseString(`<a><b><c/></b><b/><b><c/></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	bs := d.FindAll(func(n *xmltree.Node) bool { return n.Name == "b" })
	expr := parser.MustParse("//b[c and position() > 1]")
	der, ok, err := Certificate(expr, evalctx.Root(d), bs[2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("third b has c and position 3")
	}
	s := der.String()
	for _, want := range []string{"χ::t[e]", "position 3 of 3", "e1∧e2", "boolean(π)", "RelOp"} {
		if !strings.Contains(s, want) {
			t.Errorf("certificate missing %q:\n%s", want, s)
		}
	}
}

func TestWhyMember(t *testing.T) {
	d, _ := xmltree.ParseString(`<a><b/><c/></a>`)
	b := d.FindFirstElement("b")
	c := d.FindFirstElement("c")
	expr := parser.MustParse("/a/b | /a/z")
	why, err := WhyMember(expr, evalctx.Root(d), b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(why, "IS selected") || !strings.Contains(why, "π1|π2") {
		t.Errorf("WhyMember positive wrong:\n%s", why)
	}
	why, err = WhyMember(expr, evalctx.Root(d), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(why, "NOT selected") {
		t.Errorf("WhyMember negative wrong:\n%s", why)
	}
}

// Property: Certificate(ok) agrees with SingletonSuccess on random pWF
// queries, and accepting certificates are polynomial in |Q|·|D|.
func TestCertificateAgreesWithDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	gen := enginetest.NewQueryGen(rng, enginetest.GenPWF)
	checked := 0
	for trial := 0; trial < 120; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 12, MaxFanout: 3, Tags: []string{"a", "b"},
		})
		q := gen.Query()
		expr := parser.MustParse(q)
		if ast.StaticType(expr) != ast.TypeNodeSet {
			continue
		}
		ctx := evalctx.Root(doc)
		for _, r := range doc.Nodes {
			want, err := SingletonSuccess(expr, ctx, value.NewNodeSet(r), Options{})
			if err != nil {
				t.Fatal(err)
			}
			der, got, err := Certificate(expr, ctx, r, Options{})
			if err != nil {
				t.Fatalf("Certificate(%q): %v", q, err)
			}
			if got != want {
				t.Fatalf("Certificate/decision disagreement on %q node #%d: %v vs %v", q, r.Ord, got, want)
			}
			if got {
				bound := ast.Size(expr) * len(doc.Nodes) * len(doc.Nodes)
				if der.Size() > bound {
					t.Fatalf("certificate size %d exceeds |Q|·|D|² = %d on %q", der.Size(), bound, q)
				}
			}
			checked++
		}
	}
	if checked < 200 {
		t.Fatalf("only %d membership instances checked", checked)
	}
}

func TestCertificateRejectsNonNodeSet(t *testing.T) {
	d, _ := xmltree.ParseString("<a/>")
	if _, _, err := Certificate(parser.MustParse("1 + 1"), evalctx.Root(d), d.Root, Options{}); err == nil {
		t.Fatal("number query should be rejected")
	}
}
