// Package nauxpda implements the paper's central algorithmic contribution:
// the LOGCFL decision procedure for the Singleton-Success problem on pWF
// and pXPath queries (Definition 5.3, Lemma 5.4, Theorems 5.5/6.2), with
// the bounded-depth negation extension of Theorems 5.9/6.3.
//
// # From the NAuxPDA to this implementation
//
// Lemma 5.4 describes a nondeterministic auxiliary pushdown automaton that
// traverses the query tree depth-first, guessing at each query node a
// context (cnode, cpos, csize) and a result, and verifying the guesses
// against the local consistency conditions of Table 1. An NAuxPDA running
// in logarithmic space and polynomial time characterizes LOGCFL
// (Proposition 2.3).
//
// A deterministic program cannot guess, but it can search the certificate
// space, which is polynomial precisely because every guessed component is
// logarithmic-size: a node id, a position/size in [0, |D|], or a scalar of
// bounded arithmetic depth. The memoized recursion below visits each
// (query node, certificate) pair at most once, which is the standard
// LOGCFL ⊆ P simulation (evaluate the polynomial-size SAC¹ proof DAG
// bottom-up). The three mutually recursive judgments mirror Table 1:
//
//   - holds(π, n, r): location path π evaluated at context node n selects
//     node r — the rows for χ::t, /π, π1|π2, π1/π2 and χ::t[e] (with the
//     position/size of r computed by counting, never materializing Y);
//   - truth(e, c): boolean expression e is true in context c — the rows
//     for and, or, boolean(π), RelOp, plus T(l) and bounded not();
//   - scalar(e, c): number- and string-valued expressions, which are
//     functionally determined by the context (the NAuxPDA's guesses for
//     them are forced), so they are evaluated directly.
//
// Node sets are never materialized: the χ::t[e] row uses
// axes.CountSelect, which answers "is r in Y, at which proximity position,
// and how big is Y" with a counting scan — the logarithmic-space argument
// at the end of the Lemma 5.4 proof.
package nauxpda

import (
	"fmt"

	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/funcs"
	"xpathcomplexity/internal/obs"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/rewrite"
)

// Options configure the decision procedure.
type Options struct {
	// Limits are the fragment bounds (negation depth, arithmetic depth).
	Limits Limits
	// Counter counts elementary operations; may be nil.
	Counter *evalctx.Counter
	// DisableMemo disables certificate memoization, recovering the raw
	// nondeterministic search (exponential time); used by the ablation
	// benchmark BenchmarkAblation_NAuxPDAMemo.
	DisableMemo bool
	// NormalizeNegation applies the de Morgan preprocessing of the
	// Theorem 5.9 proof before the fragment check: negations are pushed
	// down to location paths (cancelling double negations and flipping
	// numeric RelOps), which can only shrink the negation depth the
	// Limits bound is checked against.
	NormalizeNegation bool
	// Tracer, when non-nil, receives enter/exit events for every holds and
	// truth judgment (the certificate-search visits); the exit cardinality
	// is 1 when the judgment holds and 0 otherwise.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives engine.nauxpda.* totals plus the
	// certificate-search depth high-water mark (nauxpda.cert_depth) and
	// the memo-table sizes.
	Metrics *obs.Metrics
	// Guard, when non-nil, enforces cancellation, the op budget and the
	// recursion-depth limit (the certificate-search depth). It is charged
	// in lockstep with Counter, so its MaxOps uses the same units as
	// Counter.Budget.
	Guard *evalctx.Guard
}

// prepare applies the optional normalization and the fragment check.
func prepare(expr ast.Expr, opts Options) (ast.Expr, error) {
	if opts.NormalizeNegation {
		expr = rewrite.PushNegation(expr)
	}
	if err := Check(expr, opts.Limits); err != nil {
		return nil, err
	}
	return expr, nil
}

// SingletonSuccess decides the Singleton-Success problem (Definition 5.3):
// given document context ctx and value v, does Q evaluate to v? For
// node-set queries v must be a singleton node-set and membership is
// decided; for boolean queries v must be Boolean(true) per the definition
// (Theorem 5.5 handles false via closure under complement — use Evaluate).
func SingletonSuccess(expr ast.Expr, ctx evalctx.Context, v value.Value, opts Options) (bool, error) {
	expr, err := prepare(expr, opts)
	if err != nil {
		return false, err
	}
	e := newChecker(ctx, opts)
	defer e.finish(e.opts.Counter.Ops())
	switch ast.StaticType(expr) {
	case ast.TypeNodeSet:
		ns, ok := v.(value.NodeSet)
		if !ok || len(ns) != 1 {
			return false, fmt.Errorf("nauxpda: Singleton-Success on a node-set query needs a single node, got %v", v)
		}
		return e.holdsExpr(expr, ctx.Node, ns[0])
	case ast.TypeBoolean:
		b, ok := v.(value.Boolean)
		if !ok || !bool(b) {
			return false, fmt.Errorf("nauxpda: Singleton-Success on a boolean query checks the value true (Definition 5.3)")
		}
		return e.truth(expr, ctx)
	case ast.TypeNumber:
		want, ok := v.(value.Number)
		if !ok {
			return false, fmt.Errorf("nauxpda: number query compared against %v", v.Kind())
		}
		got, err := e.number(expr, ctx)
		if err != nil {
			return false, err
		}
		return value.Equal(value.Number(got), want), nil
	default:
		want, ok := v.(value.String)
		if !ok {
			return false, fmt.Errorf("nauxpda: string query compared against %v", v.Kind())
		}
		got, err := e.str(expr, ctx)
		if err != nil {
			return false, err
		}
		return got == string(want), nil
	}
}

// Evaluate computes the full query result by running the decision
// procedure in a loop over the document (proof of Theorem 5.5: "checking
// whether a given XPath query evaluates to some node set X ... can be done
// by deciding the Singleton-Success problem in a loop over all elements
// v ∈ X"; booleans use closure of LOGCFL under complement,
// Proposition 2.4).
func Evaluate(expr ast.Expr, ctx evalctx.Context, opts Options) (value.Value, error) {
	expr, err := prepare(expr, opts)
	if err != nil {
		return nil, err
	}
	e := newChecker(ctx, opts)
	defer e.finish(e.opts.Counter.Ops())
	switch ast.StaticType(expr) {
	case ast.TypeNodeSet:
		var out []*xmltree.Node
		for _, r := range e.doc.Nodes {
			ok, err := e.holdsExpr(expr, ctx.Node, r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return value.NewNodeSet(out...), nil
	case ast.TypeBoolean:
		b, err := e.truth(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.Boolean(b), nil
	case ast.TypeNumber:
		n, err := e.number(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(n), nil
	default:
		s, err := e.str(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	}
}

// checker carries the memo tables of one run.
type checker struct {
	doc  *xmltree.Document
	opts Options
	// holdsMemo caches the holds(path, stepIdx, ctxNode, r) judgment.
	holdsMemo map[holdsKey]memoBool
	// truthMemo caches the truth(expr, node, pos, size) judgment.
	truthMemo map[truthKey]memoBool
	// depth and maxDepth track the certificate-search recursion — the
	// pushdown height of the simulated NAuxPDA run.
	depth    int
	maxDepth int
}

type memoBool uint8

const (
	memoUnknown memoBool = iota
	memoInProgress
	memoTrue
	memoFalse
)

type holdsKey struct {
	path *ast.Path
	step int
	ctx  *xmltree.Node
	r    *xmltree.Node
}

type truthKey struct {
	expr ast.Expr
	node *xmltree.Node
	pos  int
	size int
}

func newChecker(ctx evalctx.Context, opts Options) *checker {
	if opts.Counter == nil && (opts.Metrics != nil || opts.Tracer != nil) {
		// Instrumentation needs a counter to measure op deltas; synthesize
		// a private one so metrics reconcile even without a caller counter.
		opts.Counter = new(evalctx.Counter)
	}
	return &checker{
		doc:       ctx.Node.Document(),
		opts:      opts,
		holdsMemo: make(map[holdsKey]memoBool),
		truthMemo: make(map[truthKey]memoBool),
	}
}

// finish flushes the run's metrics; startOps is the counter value at entry.
func (e *checker) finish(startOps int64) {
	m := e.opts.Metrics
	if m == nil {
		return
	}
	m.Counter("engine.nauxpda.ops").Add(e.opts.Counter.Ops() - startOps)
	m.Counter("engine.nauxpda.evals").Inc()
	m.Gauge("nauxpda.cert_depth").SetMax(int64(e.maxDepth))
	m.Gauge("nauxpda.memo.holds").SetMax(int64(len(e.holdsMemo)))
	m.Gauge("nauxpda.memo.truth").SetMax(int64(len(e.truthMemo)))
}

// charge bumps the counter and the guard by the same n, so the guard's
// op budget is denominated exactly like Counter.Budget.
func (e *checker) charge(n int64) error {
	if err := e.opts.Counter.Step(n); err != nil {
		return err
	}
	if e.opts.Guard != nil {
		return e.opts.Guard.Step(n)
	}
	return nil
}

// holdsExpr decides whether node-set expression expr, evaluated at context
// node n, selects node r. Handles unions on top of paths.
func (e *checker) holdsExpr(expr ast.Expr, n, r *xmltree.Node) (bool, error) {
	if e.opts.Tracer == nil {
		return e.holdsExprInner(expr, n, r)
	}
	sp := e.opts.Tracer.Enter(expr, evalctx.Context{Node: n, Pos: 1, Size: 1}, e.opts.Counter)
	ok, err := e.holdsExprInner(expr, n, r)
	card := 0
	if ok {
		card = 1
	}
	e.opts.Tracer.ExitCard(sp, card, e.opts.Counter)
	return ok, err
}

func (e *checker) holdsExprInner(expr ast.Expr, n, r *xmltree.Node) (bool, error) {
	if err := e.charge(1); err != nil {
		return false, err
	}
	switch x := expr.(type) {
	case *ast.Path:
		return e.holdsPath(x, n, r)
	case *ast.Binary:
		if x.Op != ast.OpUnion {
			return false, fmt.Errorf("nauxpda: %v is not a node-set expression", x.Op)
		}
		// Table 1 row π1|π2: (n=n1 ∧ r=r1) ∨ (n=n2 ∧ r=r2).
		ok, err := e.holdsExpr(x.Left, n, r)
		if err != nil || ok {
			return ok, err
		}
		return e.holdsExpr(x.Right, n, r)
	default:
		return false, fmt.Errorf("nauxpda: unsupported node-set expression %T", expr)
	}
}

// holdsPath decides holds for a whole location path, dispatching to the
// step-indexed recursion. Table 1 row /π: n = root ∧ r = r1.
func (e *checker) holdsPath(p *ast.Path, n, r *xmltree.Node) (bool, error) {
	if p.Absolute {
		n = e.doc.Root
		if len(p.Steps) == 0 {
			return r == n, nil
		}
	}
	return e.holdsSteps(p, 0, n, r)
}

// holdsSteps decides whether steps[i:] of path p, started at context node
// n, select r. The composition row of Table 1 (π1/π2: n1 = n ∧ n2 = r1 ∧
// r = r2) introduces the existential guess of the intermediate node r1,
// realized as a loop over dom.
func (e *checker) holdsSteps(p *ast.Path, i int, n, r *xmltree.Node) (bool, error) {
	k := holdsKey{path: p, step: i, ctx: n, r: r}
	if !e.opts.DisableMemo {
		switch e.holdsMemo[k] {
		case memoTrue:
			return true, nil
		case memoFalse, memoInProgress:
			// Path judgments cannot be cyclic (steps strictly advance), but
			// guard anyway.
			return false, nil
		}
		e.holdsMemo[k] = memoInProgress
	}
	if g := e.opts.Guard; g != nil {
		if err := g.Enter(); err != nil {
			return false, err
		}
		defer g.Exit()
	}
	e.depth++
	if e.depth > e.maxDepth {
		e.maxDepth = e.depth
	}
	res, err := e.holdsStepsCompute(p, i, n, r)
	e.depth--
	if err != nil {
		return false, err
	}
	if !e.opts.DisableMemo {
		if res {
			e.holdsMemo[k] = memoTrue
		} else {
			e.holdsMemo[k] = memoFalse
		}
	}
	return res, nil
}

func (e *checker) holdsStepsCompute(p *ast.Path, i int, n, r *xmltree.Node) (bool, error) {
	if err := e.charge(1); err != nil {
		return false, err
	}
	step := p.Steps[i]
	last := i == len(p.Steps)-1
	if last {
		return e.holdsStep(step, n, r)
	}
	// Guess the intermediate node r1 ∈ dom.
	for _, mid := range e.doc.Nodes {
		ok, err := e.holdsStep(step, n, mid)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		ok, err = e.holdsSteps(p, i+1, mid, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// holdsStep is the χ::t and χ::t[e] rows of Table 1: r must be reachable
// from n via χ::t, and if a predicate is present it must hold at
// (r, pnew, snew) where pnew is the proximity position of r in
// Y = χ::t(n) and snew = |Y| — computed by counting, without
// materializing Y.
func (e *checker) holdsStep(step *ast.Step, n, r *xmltree.Node) (bool, error) {
	if err := e.charge(1); err != nil {
		return false, err
	}
	if !axes.ReachableTest(step.Axis, step.Test, n, r) {
		return false, nil
	}
	if len(step.Preds) == 0 {
		return true, nil
	}
	// Check is rejected earlier for ≥2 predicates; exactly one here.
	pred := step.Preds[0]
	pos, size := axes.CountSelect(step.Axis, step.Test, n, r)
	if err := e.charge(int64(len(e.doc.Nodes))); err != nil {
		return false, err
	}
	pctx := evalctx.Context{Node: r, Pos: pos, Size: size}
	return e.predicate(pred, pctx)
}

// predicate applies the XPath predicate conversion: numbers test the
// proximity position, everything else converts to boolean.
func (e *checker) predicate(pred ast.Expr, ctx evalctx.Context) (bool, error) {
	switch ast.StaticType(pred) {
	case ast.TypeNumber:
		v, err := e.number(pred, ctx)
		if err != nil {
			return false, err
		}
		return v == float64(ctx.Pos), nil
	default:
		return e.truthOrExists(pred, ctx)
	}
}

// truth decides boolean expressions: the and/or/boolean(π)/RelOp rows of
// Table 1, plus T(l) and the bounded not() of Theorem 5.9.
func (e *checker) truth(expr ast.Expr, ctx evalctx.Context) (bool, error) {
	if e.opts.Tracer == nil {
		return e.truthMemoized(expr, ctx)
	}
	sp := e.opts.Tracer.Enter(expr, ctx, e.opts.Counter)
	ok, err := e.truthMemoized(expr, ctx)
	card := 0
	if ok {
		card = 1
	}
	e.opts.Tracer.ExitCard(sp, card, e.opts.Counter)
	return ok, err
}

func (e *checker) truthMemoized(expr ast.Expr, ctx evalctx.Context) (bool, error) {
	k := truthKey{expr: expr, node: ctx.Node, pos: ctx.Pos, size: ctx.Size}
	if !e.opts.DisableMemo {
		switch e.truthMemo[k] {
		case memoTrue:
			return true, nil
		case memoFalse:
			return false, nil
		}
	}
	if g := e.opts.Guard; g != nil {
		if err := g.Enter(); err != nil {
			return false, err
		}
		defer g.Exit()
	}
	e.depth++
	if e.depth > e.maxDepth {
		e.maxDepth = e.depth
	}
	res, err := e.truthCompute(expr, ctx)
	e.depth--
	if err != nil {
		return false, err
	}
	if !e.opts.DisableMemo {
		if res {
			e.truthMemo[k] = memoTrue
		} else {
			e.truthMemo[k] = memoFalse
		}
	}
	return res, nil
}

func (e *checker) truthCompute(expr ast.Expr, ctx evalctx.Context) (bool, error) {
	if err := e.charge(1); err != nil {
		return false, err
	}
	switch x := expr.(type) {
	case *ast.Binary:
		switch {
		case x.Op == ast.OpAnd:
			l, err := e.truthOrExists(x.Left, ctx)
			if err != nil || !l {
				return false, err
			}
			return e.truthOrExists(x.Right, ctx)
		case x.Op == ast.OpOr:
			l, err := e.truthOrExists(x.Left, ctx)
			if err != nil || l {
				return l, err
			}
			return e.truthOrExists(x.Right, ctx)
		case x.Op == ast.OpUnion:
			return e.exists(x, ctx)
		case x.Op.IsRelational():
			return e.relational(x, ctx)
		default:
			return false, fmt.Errorf("nauxpda: %v is not boolean", x.Op)
		}
	case *ast.Call:
		switch x.Name {
		case "boolean":
			return e.truthOrExists(x.Args[0], ctx)
		case "not":
			// Theorem 5.9: treat not(π) by a loop over all element nodes x
			// in D (here folded into the memoized truth of the operand).
			inner, err := e.truthOrExists(x.Args[0], ctx)
			if err != nil {
				return false, err
			}
			return !inner, nil
		case "true":
			return true, nil
		case "false":
			return false, nil
		case "contains", "starts-with":
			a, err := e.str(x.Args[0], ctx)
			if err != nil {
				return false, err
			}
			b, err := e.str(x.Args[1], ctx)
			if err != nil {
				return false, err
			}
			v, err := funcs.Call(x.Name, ctx, []value.Value{value.String(a), value.String(b)})
			if err != nil {
				return false, err
			}
			return bool(v.(value.Boolean)), nil
		default:
			return false, fmt.Errorf("nauxpda: function %q is not boolean in pXPath", x.Name)
		}
	case *ast.LabelTest:
		return ctx.Node != nil && ctx.Node.HasLabel(x.Label), nil
	case *ast.Path:
		return e.exists(x, ctx)
	default:
		return false, fmt.Errorf("nauxpda: unsupported boolean expression %T", expr)
	}
}

// truthOrExists evaluates a boolean subexpression, converting node-set
// operands with the implicit exists-semantics of conditions (footnote 3 of
// the paper).
func (e *checker) truthOrExists(expr ast.Expr, ctx evalctx.Context) (bool, error) {
	switch ast.StaticType(expr) {
	case ast.TypeNodeSet:
		return e.exists(expr, ctx)
	case ast.TypeBoolean:
		return e.truth(expr, ctx)
	case ast.TypeNumber:
		v, err := e.number(expr, ctx)
		if err != nil {
			return false, err
		}
		return value.ToBoolean(value.Number(v)), nil
	default:
		v, err := e.str(expr, ctx)
		if err != nil {
			return false, err
		}
		return v != "", nil
	}
}

// exists decides boolean(π): the Table 1 row "r = true ∧ (n1 = n ∧ ... ∧
// r1 ∈ dom)" — the guess of r1 becomes a loop over dom.
func (e *checker) exists(expr ast.Expr, ctx evalctx.Context) (bool, error) {
	for _, r := range e.doc.Nodes {
		ok, err := e.holdsExpr(expr, ctx.Node, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// relational decides e1 RelOp e2. For number×number operands this is the
// Table 1 row "r = true ∧ r1 RelOp r2"; node-set operands get the
// existential semantics of §3.4, with the witnessing node guessed by a
// loop over dom (the same technique as Theorem 5.9's negation loop).
func (e *checker) relational(x *ast.Binary, ctx evalctx.Context) (bool, error) {
	lt, rt := ast.StaticType(x.Left), ast.StaticType(x.Right)
	if lt == ast.TypeBoolean || rt == ast.TypeBoolean {
		return false, ErrBooleanRelOp
	}
	if lt == ast.TypeNodeSet && rt == ast.TypeNodeSet {
		for _, a := range e.doc.Nodes {
			okA, err := e.holdsExpr(x.Left, ctx.Node, a)
			if err != nil {
				return false, err
			}
			if !okA {
				continue
			}
			for _, b := range e.doc.Nodes {
				okB, err := e.holdsExpr(x.Right, ctx.Node, b)
				if err != nil {
					return false, err
				}
				if okB && value.Compare(x.Op, value.String(a.StringValue()), value.String(b.StringValue())) {
					return true, nil
				}
			}
		}
		return false, nil
	}
	if lt == ast.TypeNodeSet || rt == ast.TypeNodeSet {
		nodeSide, scalarSide := x.Left, x.Right
		if rt == ast.TypeNodeSet {
			nodeSide, scalarSide = x.Right, x.Left
		}
		sv, err := e.scalarValue(scalarSide, ctx)
		if err != nil {
			return false, err
		}
		for _, a := range e.doc.Nodes {
			ok, err := e.holdsExpr(nodeSide, ctx.Node, a)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			op := x.Op
			var res bool
			if nodeSide == x.Left {
				res = value.Compare(op, value.NewNodeSet(a), sv)
			} else {
				res = value.Compare(op, sv, value.NewNodeSet(a))
			}
			if res {
				return true, nil
			}
		}
		return false, nil
	}
	// Scalar × scalar.
	l, err := e.scalarValue(x.Left, ctx)
	if err != nil {
		return false, err
	}
	r, err := e.scalarValue(x.Right, ctx)
	if err != nil {
		return false, err
	}
	return value.Compare(x.Op, l, r), nil
}

// scalarValue evaluates a number- or string-typed expression.
func (e *checker) scalarValue(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	if ast.StaticType(expr) == ast.TypeNumber {
		n, err := e.number(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(n), nil
	}
	s, err := e.str(expr, ctx)
	if err != nil {
		return nil, err
	}
	return value.String(s), nil
}

// number evaluates a number-typed expression; the value is functionally
// determined by the context (position(), last(), constants, bounded
// arithmetic), so the NAuxPDA's guess is forced and we compute directly.
func (e *checker) number(expr ast.Expr, ctx evalctx.Context) (float64, error) {
	if err := e.charge(1); err != nil {
		return 0, err
	}
	switch x := expr.(type) {
	case *ast.Number:
		return x.Val, nil
	case *ast.Unary:
		v, err := e.number(x.Operand, ctx)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *ast.Binary:
		if !x.Op.IsArithmetic() {
			return 0, fmt.Errorf("nauxpda: %v is not numeric", x.Op)
		}
		l, err := e.number(x.Left, ctx)
		if err != nil {
			return 0, err
		}
		r, err := e.number(x.Right, ctx)
		if err != nil {
			return 0, err
		}
		return value.Arith(x.Op, l, r), nil
	case *ast.Call:
		switch x.Name {
		case "position":
			return float64(ctx.Pos), nil
		case "last":
			return float64(ctx.Size), nil
		case "floor", "ceiling", "round":
			v, err := e.number(x.Args[0], ctx)
			if err != nil {
				return 0, err
			}
			out, err := funcs.Call(x.Name, ctx, []value.Value{value.Number(v)})
			if err != nil {
				return 0, err
			}
			return float64(out.(value.Number)), nil
		default:
			return 0, fmt.Errorf("nauxpda: function %q is not numeric in pXPath", x.Name)
		}
	default:
		return 0, fmt.Errorf("nauxpda: unsupported numeric expression %T", expr)
	}
}

// str evaluates a string-typed expression. Node-set arguments are
// converted via their first node in document order, found by scanning dom
// with the holds judgment (no materialization).
func (e *checker) str(expr ast.Expr, ctx evalctx.Context) (string, error) {
	if err := e.charge(1); err != nil {
		return "", err
	}
	switch x := expr.(type) {
	case *ast.Literal:
		return x.Val, nil
	case *ast.Path, *ast.Binary:
		if ast.StaticType(expr) == ast.TypeNodeSet {
			// First selected node in document order, or "".
			for _, r := range e.doc.Nodes {
				ok, err := e.holdsExpr(expr, ctx.Node, r)
				if err != nil {
					return "", err
				}
				if ok {
					return r.StringValue(), nil
				}
			}
			return "", nil
		}
		return "", fmt.Errorf("nauxpda: unsupported string expression %T", expr)
	case *ast.Call:
		switch x.Name {
		case "concat":
			out := ""
			for _, a := range x.Args {
				s, err := e.str(a, ctx)
				if err != nil {
					return "", err
				}
				out += s
			}
			return out, nil
		case "substring", "substring-before", "substring-after", "translate":
			args := make([]value.Value, len(x.Args))
			for i, a := range x.Args {
				v, err := e.scalarOrNodeString(a, ctx)
				if err != nil {
					return "", err
				}
				args[i] = v
			}
			v, err := funcs.Call(x.Name, ctx, args)
			if err != nil {
				return "", err
			}
			return string(v.(value.String)), nil
		default:
			return "", fmt.Errorf("nauxpda: function %q is not a pXPath string function", x.Name)
		}
	default:
		return "", fmt.Errorf("nauxpda: unsupported string expression %T", expr)
	}
}

// scalarOrNodeString evaluates an argument to a string function: node-set
// arguments become their string conversion, numbers stay numbers (for
// substring positions).
func (e *checker) scalarOrNodeString(expr ast.Expr, ctx evalctx.Context) (value.Value, error) {
	switch ast.StaticType(expr) {
	case ast.TypeNodeSet:
		s, err := e.str(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	case ast.TypeNumber:
		n, err := e.number(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.Number(n), nil
	case ast.TypeString:
		s, err := e.str(expr, ctx)
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	default:
		return nil, fmt.Errorf("nauxpda: boolean argument to string function")
	}
}
