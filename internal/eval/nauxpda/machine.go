package nauxpda

import (
	"fmt"

	"xpathcomplexity/internal/axes"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
)

// This file implements the NAuxPDA of the Lemma 5.4 proof *literally*: an
// explicit machine with
//
//   - a worktape holding CurrN, Dir, and the K+2 value records CurrVal,
//     AuxVal and ChildVal[1..K] (each with cnode, cpos, csize, res);
//   - a stack onto which (CurrVal, ChildVal[·], CurrN) is pushed on every
//     downward move and popped before every upward move;
//   - a depth-first, left-to-right traversal of the query tree that
//     guesses a context and result when entering a node downward and
//     checks the Table 1 local consistency condition when leaving it
//     upward.
//
// Nondeterminism is realized by a backtracking chooser: the machine runs
// deterministically against a recorded choice string, and the driver
// explores the choice tree depth-first. This is exponential in the worst
// case — which is the point: the machine exists to *validate* the
// memoized polynomial simulation in nauxpda.go against the paper's
// automaton on small instances, not to replace it. The one shortcut taken
// is that number- and string-valued results, being functionally
// determined by the guessed context (see the package comment), are
// computed instead of guessed from an infinite domain; acceptance is
// unchanged.
//
// The machine handles the pWF-shaped core (Definition 5.1): location
// paths decomposed into binary compositions, single predicates, and, or,
// boolean(), numeric RelOp/ArithOp, position(), last(), constants, T(l).

// qnode is a node of the machine's query tree. The paper's K (maximum
// child count) is 2; children beyond the nondeterministically relevant
// one are skipped exactly as in the proof ("ignore the whole subtree ...
// rooted at the other child node").
type qnode struct {
	kind     qkind
	children []*qnode

	// Leaf/step payload.
	step  *ast.Step // qStep: χ::t with optional single predicate (child 0)
	op    ast.BinOp // qRelOp
	num   float64   // qConst
	label string    // qLabel
	expr  ast.Expr  // original numeric/string subexpression for qScalar
}

type qkind int

const (
	qStep     qkind = iota // χ::t or χ::t[e]; child 0 (if any) is e
	qRoot                  // /π (child 0 = π)
	qCompose               // π1/π2
	qUnion                 // π1|π2
	qAnd                   // e1 and e2
	qOr                    // e1 or e2
	qBoolean               // boolean(π) / implicit exists
	qNot                   // not(e) — bounded negation extension
	qRelOp                 // e1 RelOp e2 over scalars (children are qScalar)
	qScalar                // a number-valued expression, computed directly
	qPosition              // position()
	qLast                  // last()
	qConst                 // numeric constant
	qLabel                 // T(l)
)

func (k qkind) String() string {
	switch k {
	case qStep:
		return "step"
	case qRoot:
		return "/"
	case qCompose:
		return "compose"
	case qUnion:
		return "union"
	case qAnd:
		return "and"
	case qOr:
		return "or"
	case qBoolean:
		return "boolean"
	case qNot:
		return "not"
	case qRelOp:
		return "relop"
	case qScalar:
		return "scalar"
	case qPosition:
		return "position"
	case qLast:
		return "last"
	case qConst:
		return "const"
	case qLabel:
		return "label"
	default:
		return "?"
	}
}

// buildQueryTree compiles an expression into the machine's query tree.
// Unsupported constructs return an error (the machine covers the pWF core
// plus T(l) and bounded not()).
func buildQueryTree(e ast.Expr) (*qnode, error) {
	switch x := e.(type) {
	case *ast.Path:
		return buildPathTree(x)
	case *ast.Binary:
		switch {
		case x.Op == ast.OpAnd || x.Op == ast.OpOr:
			l, err := buildCondTree(x.Left)
			if err != nil {
				return nil, err
			}
			r, err := buildCondTree(x.Right)
			if err != nil {
				return nil, err
			}
			k := qAnd
			if x.Op == ast.OpOr {
				k = qOr
			}
			return &qnode{kind: k, children: []*qnode{l, r}}, nil
		case x.Op == ast.OpUnion:
			l, err := buildQueryTree(x.Left)
			if err != nil {
				return nil, err
			}
			r, err := buildQueryTree(x.Right)
			if err != nil {
				return nil, err
			}
			return &qnode{kind: qUnion, children: []*qnode{l, r}}, nil
		case x.Op.IsRelational():
			if ast.StaticType(x.Left) != ast.TypeNumber || ast.StaticType(x.Right) != ast.TypeNumber {
				return nil, fmt.Errorf("nauxpda machine: RelOp over non-numbers is outside the machine's pWF core")
			}
			return &qnode{kind: qRelOp, op: x.Op, children: []*qnode{
				{kind: qScalar, expr: x.Left},
				{kind: qScalar, expr: x.Right},
			}}, nil
		default:
			if ast.StaticType(e) == ast.TypeNumber {
				return &qnode{kind: qScalar, expr: e}, nil
			}
			return nil, fmt.Errorf("nauxpda machine: %v at query top level unsupported", x.Op)
		}
	case *ast.Call:
		switch x.Name {
		case "boolean":
			inner, err := buildQueryTree(x.Args[0])
			if err != nil {
				return nil, err
			}
			return &qnode{kind: qBoolean, children: []*qnode{inner}}, nil
		case "not":
			inner, err := buildCondTree(x.Args[0])
			if err != nil {
				return nil, err
			}
			return &qnode{kind: qNot, children: []*qnode{inner}}, nil
		case "position":
			return &qnode{kind: qPosition}, nil
		case "last":
			return &qnode{kind: qLast}, nil
		case "true":
			return &qnode{kind: qConst, num: 1}, nil
		case "false":
			return &qnode{kind: qConst, num: 0}, nil
		default:
			return nil, fmt.Errorf("nauxpda machine: function %q unsupported", x.Name)
		}
	case *ast.Number:
		return &qnode{kind: qConst, num: x.Val}, nil
	case *ast.Unary:
		return &qnode{kind: qScalar, expr: x}, nil
	case *ast.LabelTest:
		return &qnode{kind: qLabel, label: x.Label}, nil
	default:
		return nil, fmt.Errorf("nauxpda machine: %T unsupported", e)
	}
}

// buildCondTree builds a boolean-context subtree: node-set expressions get
// the implicit exists-semantics (wrapped in qBoolean).
func buildCondTree(e ast.Expr) (*qnode, error) {
	n, err := buildQueryTree(e)
	if err != nil {
		return nil, err
	}
	switch n.kind {
	case qStep, qCompose, qRoot, qUnion:
		return &qnode{kind: qBoolean, children: []*qnode{n}}, nil
	default:
		return n, nil
	}
}

// buildPathTree decomposes a location path into binary composition nodes,
// with χ::t[e] steps carrying their predicate as child 0.
func buildPathTree(p *ast.Path) (*qnode, error) {
	var cur *qnode
	for _, s := range p.Steps {
		if len(s.Preds) > 1 {
			return nil, fmt.Errorf("nauxpda machine: %w", ErrIteratedPredicates)
		}
		sn := &qnode{kind: qStep, step: s}
		if len(s.Preds) == 1 {
			pred := s.Preds[0]
			if ast.StaticType(pred) == ast.TypeNumber {
				// Positional shorthand [k] ≡ [position() = k].
				pn := &qnode{kind: qRelOp, op: ast.OpEq, children: []*qnode{
					{kind: qPosition},
					{kind: qScalar, expr: pred},
				}}
				sn.children = []*qnode{pn}
			} else {
				pn, err := buildCondTree(pred)
				if err != nil {
					return nil, err
				}
				sn.children = []*qnode{pn}
			}
		}
		if cur == nil {
			cur = sn
		} else {
			cur = &qnode{kind: qCompose, children: []*qnode{cur, sn}}
		}
	}
	if cur == nil {
		// A bare "/": selects exactly the root.
		cur = &qnode{kind: qStep, step: &ast.Step{Axis: ast.AxisSelf, Test: ast.NodeTest{Kind: ast.TestNode}}}
	}
	if p.Absolute {
		cur = &qnode{kind: qRoot, children: []*qnode{cur}}
	}
	return cur, nil
}

// val is one value record of the worktape: a context triple plus a result
// component. Exactly the cnode/cpos/csize/res of the proof; undefined
// components are nil/0.
type val struct {
	cnode *xmltree.Node
	cpos  int
	csize int
	// res is the guessed result: a node (node-set typed subexpressions),
	// true (boolean), or a number.
	resNode *xmltree.Node
	resBool bool
	resNum  float64
}

// chooser drives the machine's nondeterminism by replaying a recorded
// choice string and extending it depth-first.
type chooser struct {
	replay []int // fixed prefix of choices
	used   int   // choices consumed this run
	maxes  []int // branching factor at each consumed choice point
	budget *evalctx.Counter
	stats  *MachineStats
}

var errDead = fmt.Errorf("nauxpda machine: run rejected")

// choose returns the current run's choice in [0, max); recording the
// branching factor for the driver.
func (c *chooser) choose(max int) (int, error) {
	if max <= 0 {
		return 0, errDead
	}
	if err := c.budget.Step(1); err != nil {
		return 0, err
	}
	if c.stats != nil {
		c.stats.Choices++
	}
	c.maxes = append(c.maxes, max)
	if c.used < len(c.replay) {
		v := c.replay[c.used]
		c.used++
		return v, nil
	}
	c.used++
	c.replay = append(c.replay, 0)
	return 0, nil
}

// MachineOptions configure the literal automaton.
type MachineOptions struct {
	// MaxRuns bounds the number of nondeterministic runs explored; 0
	// means 1<<20. The machine is a validation artifact for small
	// instances, not a production evaluator.
	MaxRuns int
	// Counter counts choice steps across all runs; may be nil.
	Counter *evalctx.Counter
	// Stats, when non-nil, receives resource measurements across all
	// runs — the quantitative face of the Lemma 5.4 space argument.
	Stats *MachineStats
}

// MachineStats reports the machine's resource use.
type MachineStats struct {
	// Runs is the number of nondeterministic runs explored.
	Runs int
	// MaxStack is the deepest stack across all runs; the Lemma 5.4
	// machine pushes one frame per query-tree level, so this is bounded
	// by the query-tree depth — NOT by the document size.
	MaxStack int
	// Choices is the total number of nondeterministic choices made.
	Choices int64
}

// MachineAccepts runs the literal NAuxPDA on a Singleton-Success instance
// (D through ctx, Q, v) and reports whether some nondeterministic run
// accepts. Query support is the pWF core (plus T(l), bounded not()); the
// result v must be a singleton node-set, Boolean(true), or a number.
func MachineAccepts(expr ast.Expr, ctx evalctx.Context, v value.Value, opts MachineOptions) (bool, error) {
	root, err := buildQueryTree(expr)
	if err != nil {
		return false, err
	}
	doc := ctx.Node.Document()
	initial := val{cnode: ctx.Node, cpos: ctx.Pos, csize: ctx.Size}
	switch x := v.(type) {
	case value.NodeSet:
		if len(x) != 1 {
			return false, fmt.Errorf("nauxpda machine: need a singleton node-set, got %d nodes", len(x))
		}
		initial.resNode = x[0]
	case value.Boolean:
		if !bool(x) {
			return false, fmt.Errorf("nauxpda machine: boolean instances check the value true (Definition 5.3)")
		}
		initial.resBool = true
	case value.Number:
		initial.resNum = float64(x)
	default:
		return false, fmt.Errorf("nauxpda machine: unsupported result type %v", v.Kind())
	}

	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 1 << 20
	}
	// Depth-first exploration of the choice tree: run the machine with a
	// replay prefix; on rejection, increment the last choice point with
	// room, truncating deeper ones.
	replay := []int{}
	for run := 0; run < maxRuns; run++ {
		if opts.Stats != nil {
			opts.Stats.Runs++
		}
		c := &chooser{replay: append([]int(nil), replay...), budget: opts.Counter, stats: opts.Stats}
		ok, err := machineRun(doc, root, initial, c, opts.Stats)
		if err != nil && err != errDead {
			return false, err
		}
		if ok {
			return true, nil
		}
		// Advance to the next choice string.
		i := len(c.maxes) - 1
		replay = c.replay[:c.used]
		maxes := c.maxes
		for i >= 0 {
			if replay[i]+1 < maxes[i] {
				replay[i]++
				replay = replay[:i+1]
				break
			}
			i--
		}
		if i < 0 {
			return false, nil // choice tree exhausted
		}
	}
	return false, fmt.Errorf("nauxpda machine: run budget exhausted (%d runs)", maxRuns)
}

// frame is one stack entry: the values pushed when leaving a node in
// downward direction, exactly (CurrVal, ChildVal[1..K], CurrN) as in the
// proof.
type frame struct {
	currVal  val
	childVal [2]val
	childSet [2]bool
	currN    *qnode
	// visiting is the index of the child being processed below this
	// frame.
	visiting int
}

// machineRun executes one nondeterministic run, with all guesses resolved
// through the chooser. It mirrors the proof's structure: an explicit
// stack, downward entries guessing CurrVal, upward returns filling the
// parent's ChildVal and triggering the local consistency check.
func machineRun(doc *xmltree.Document, root *qnode, initial val, c *chooser, stats *MachineStats) (bool, error) {
	var stack []*frame

	// Machine registers.
	currN := root
	currVal := initial
	var childVal [2]val
	var childSet [2]bool

	// moveDown pushes the current node and enters child i with a freshly
	// guessed value record.
	moveDown := func(i int) error {
		stack = append(stack, &frame{
			currVal: currVal, childVal: childVal, childSet: childSet,
			currN: currN, visiting: i,
		})
		if stats != nil && len(stack) > stats.MaxStack {
			stats.MaxStack = len(stack)
		}
		child := currN.children[i]
		guessed, err := guessVal(doc, currN, i, currVal, childVal, child, c)
		if err != nil {
			return err
		}
		currN = child
		currVal = guessed
		childVal = [2]val{}
		childSet = [2]bool{}
		return nil
	}

	// moveUp pops the parent frame, stores the finished value in
	// ChildVal[i] (via AuxVal, as in the proof) and restores registers.
	moveUp := func() {
		auxVal := currVal
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		currN = f.currN
		currVal = f.currVal
		childVal = f.childVal
		childSet = f.childSet
		childVal[f.visiting] = auxVal
		childSet[f.visiting] = true
	}

	for {
		// Decide what to process next at currN.
		next, done, err := nextChild(currN, childSet, c)
		if err != nil {
			return false, err
		}
		if !done {
			if err := moveDown(next); err != nil {
				return false, err
			}
			continue
		}
		// All required children processed (or leaf): local consistency.
		ok, err := consistent(doc, currN, currVal, childVal, childSet)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, errDead
		}
		if len(stack) == 0 {
			return true, nil // back at R with success
		}
		moveUp()
	}
}

// nextChild selects the next child to visit at node n, or reports that
// the node is ready for its consistency check. For or/union nodes a
// single child is chosen nondeterministically ("we choose
// nondeterministically a single child ... and ignore the whole subtree
// rooted at the other child node").
func nextChild(n *qnode, childSet [2]bool, c *chooser) (int, bool, error) {
	switch n.kind {
	case qOr, qUnion:
		if childSet[0] || childSet[1] {
			return 0, true, nil
		}
		pick, err := c.choose(2)
		if err != nil {
			return 0, false, err
		}
		return pick, false, nil
	case qRelOp:
		// Scalar operands are functionally determined; the consistency
		// check computes them directly (no downward move).
		return 0, true, nil
	case qNot:
		// Bounded negation is decided by the complementary deterministic
		// check (the recursive NAuxPDA call of the Theorem 5.9 proof); a
		// nondeterministic descent cannot witness nonexistence.
		return 0, true, nil
	default:
		for i := range n.children {
			if !childSet[i] {
				return i, false, nil
			}
		}
		return 0, true, nil
	}
}

// guessVal guesses the value record for child number idx of parent,
// entered downward. The nondeterministic machine of the proof guesses all
// four components freely and prunes at the later consistency check; the
// deterministic driver would drown in those runs, so components that the
// parent's Table 1 row *forces* (child context node of a composition, the
// position/size a step predicate receives, the propagated result of /π
// and π1|π2, ...) are derived instead of guessed. The surviving choices —
// the intermediate node of π1/π2, the witness node of boolean(π), the
// branch of or/| — are exactly the instance's real nondeterminism, so
// acceptance is unchanged.
func guessVal(doc *xmltree.Document, parent *qnode, idx int, parentVal val, siblings [2]val, child *qnode, c *chooser) (val, error) {
	var v val
	// Context triple.
	switch parent.kind {
	case qCompose:
		if idx == 0 {
			v.cnode = parentVal.cnode // n1 = n
		} else {
			v.cnode = siblings[0].resNode // n2 = r1
		}
		v.cpos, v.csize = 1, 1 // paths never read the outer position
	case qRoot:
		v.cnode = doc.Root // n1 = root
		v.cpos, v.csize = 1, 1
	case qUnion:
		v.cnode = parentVal.cnode // n_i = n
		v.cpos, v.csize = 1, 1
	case qStep:
		// The predicate's context is (r, pnew, snew).
		v.cnode = parentVal.resNode
		if v.cnode == nil {
			return v, errDead
		}
		v.cpos, v.csize = axes.CountSelect(parent.step.Axis, parent.step.Test, parentVal.cnode, parentVal.resNode)
		if v.cpos == 0 {
			return v, errDead // r not in Y: doomed run
		}
	default:
		// Boolean connectives and RelOp children: n_i = n, p_i = p,
		// s_i = s.
		v.cnode = parentVal.cnode
		v.cpos, v.csize = parentVal.cpos, parentVal.csize
	}
	// Result component.
	switch child.kind {
	case qStep, qCompose, qRoot, qUnion:
		switch parent.kind {
		case qCompose:
			if idx == 0 {
				// r1 is the genuinely nondeterministic intermediate node.
				ri, err := c.choose(len(doc.Nodes))
				if err != nil {
					return v, err
				}
				v.resNode = doc.Nodes[ri]
			} else {
				v.resNode = parentVal.resNode // r = r2
			}
		case qRoot, qUnion:
			v.resNode = parentVal.resNode // r = r1 / r = r_i
		case qBoolean:
			// The witness r1 ∈ dom of the boolean(π) row.
			ri, err := c.choose(len(doc.Nodes))
			if err != nil {
				return v, err
			}
			v.resNode = doc.Nodes[ri]
		default:
			ri, err := c.choose(len(doc.Nodes))
			if err != nil {
				return v, err
			}
			v.resNode = doc.Nodes[ri]
		}
	case qAnd, qOr, qBoolean, qNot, qRelOp, qLabel:
		// Condition nodes must come out true in accepted runs (footnote 3
		// exists-semantics); not() is checked by complement.
		v.resBool = true
	case qScalar, qPosition, qLast, qConst:
		// Functionally determined; computed in consistent().
	}
	return v, nil
}

// consistent implements Table 1 for the machine's node kinds, over the
// guessed CurrVal and the collected ChildVal records.
func consistent(doc *xmltree.Document, n *qnode, cur val, child [2]val, childSet [2]bool) (bool, error) {
	switch n.kind {
	case qStep:
		// χ::t (leaf) or χ::t[e]: r reachable from n via χ::t; with a
		// predicate, the child's context must be (r, pnew, snew) and its
		// result true (or the flattened positional check).
		if cur.cnode == nil || cur.resNode == nil {
			return false, nil
		}
		if !axes.ReachableTest(n.step.Axis, n.step.Test, cur.cnode, cur.resNode) {
			return false, nil
		}
		if len(n.children) == 0 {
			return true, nil
		}
		if !childSet[0] {
			return false, nil
		}
		pnew, snew := axes.CountSelect(n.step.Axis, n.step.Test, cur.cnode, cur.resNode)
		cv := child[0]
		return cv.cnode == cur.resNode && cv.cpos == pnew && cv.csize == snew && cv.resBool, nil
	case qRoot:
		// /π: n1 = root ∧ r = r1.
		cv := child[0]
		return childSet[0] && cv.cnode == doc.Root && cv.resNode == cur.resNode, nil
	case qCompose:
		// π1/π2: n1 = n ∧ n2 = r1 ∧ r = r2.
		l, r := child[0], child[1]
		return childSet[0] && childSet[1] &&
			l.cnode == cur.cnode && r.cnode == l.resNode && r.resNode == cur.resNode, nil
	case qUnion:
		// One child chosen: (n_i = n ∧ r = r_i).
		for i := range n.children {
			if childSet[i] && child[i].cnode == cur.cnode && child[i].resNode == cur.resNode {
				return true, nil
			}
		}
		return false, nil
	case qAnd:
		l, r := child[0], child[1]
		return childSet[0] && childSet[1] &&
			sameContext(l, cur) && sameContext(r, cur) && l.resBool && r.resBool && cur.resBool, nil
	case qOr:
		for i := range n.children {
			if childSet[i] && sameContext(child[i], cur) && child[i].resBool {
				return cur.resBool, nil
			}
		}
		return false, nil
	case qBoolean:
		// r = true ∧ n1 = n ∧ r1 ∈ dom: the child guessed some witness
		// node.
		cv := child[0]
		return childSet[0] && cv.cnode == cur.cnode && cv.resNode != nil && cur.resBool, nil
	case qNot:
		// Bounded negation: decided by the complementary deterministic
		// check (Theorem 5.9's recursive call), since a nondeterministic
		// machine cannot verify nonexistence by guessing.
		chk := newChecker(evalctx.Context{Node: cur.cnode, Pos: cur.cpos, Size: cur.csize}, Options{})
		inner, err := chk.truthQNode(n.children[0], evalctx.Context{Node: cur.cnode, Pos: cur.cpos, Size: cur.csize})
		if err != nil {
			return false, err
		}
		return !inner && cur.resBool, nil
	case qRelOp:
		l, err := evalScalarQ(n.children[0], cur)
		if err != nil {
			return false, err
		}
		r, err := evalScalarQ(n.children[1], cur)
		if err != nil {
			return false, err
		}
		return value.Compare(n.op, value.Number(l), value.Number(r)) && cur.resBool, nil
	case qLabel:
		return cur.cnode != nil && cur.cnode.HasLabel(n.label) && cur.resBool, nil
	case qPosition, qLast, qConst, qScalar:
		// Stand-alone scalar queries: result equals the computed value.
		got, err := evalScalarQ(n, cur)
		if err != nil {
			return false, err
		}
		return got == cur.resNum, nil
	default:
		return false, fmt.Errorf("nauxpda machine: consistency for %v not implemented", n.kind)
	}
}

func sameContext(a val, b val) bool {
	return a.cnode == b.cnode && a.cpos == b.cpos && a.csize == b.csize
}

// evalScalarQ computes a functionally determined scalar value.
func evalScalarQ(n *qnode, cur val) (float64, error) {
	switch n.kind {
	case qPosition:
		return float64(cur.cpos), nil
	case qLast:
		return float64(cur.csize), nil
	case qConst:
		return n.num, nil
	case qScalar:
		chk := &checker{doc: cur.cnode.Document(), holdsMemo: map[holdsKey]memoBool{}, truthMemo: map[truthKey]memoBool{}}
		return chk.number(n.expr, evalctx.Context{Node: cur.cnode, Pos: cur.cpos, Size: cur.csize})
	default:
		return 0, fmt.Errorf("nauxpda machine: %v is not scalar", n.kind)
	}
}

// truthQNode bridges a machine condition subtree back to the memoized
// checker (used only for the bounded-negation complement).
func (e *checker) truthQNode(n *qnode, ctx evalctx.Context) (bool, error) {
	switch n.kind {
	case qAnd:
		l, err := e.truthQNode(n.children[0], ctx)
		if err != nil || !l {
			return false, err
		}
		return e.truthQNode(n.children[1], ctx)
	case qOr:
		l, err := e.truthQNode(n.children[0], ctx)
		if err != nil || l {
			return l, err
		}
		return e.truthQNode(n.children[1], ctx)
	case qNot:
		inner, err := e.truthQNode(n.children[0], ctx)
		if err != nil {
			return false, err
		}
		return !inner, nil
	case qBoolean:
		return e.existsQNode(n.children[0], ctx)
	case qLabel:
		return ctx.Node != nil && ctx.Node.HasLabel(n.label), nil
	case qRelOp:
		cv := val{cnode: ctx.Node, cpos: ctx.Pos, csize: ctx.Size}
		l, err := evalScalarQ(n.children[0], cv)
		if err != nil {
			return false, err
		}
		r, err := evalScalarQ(n.children[1], cv)
		if err != nil {
			return false, err
		}
		return value.Compare(n.op, value.Number(l), value.Number(r)), nil
	case qStep, qCompose, qRoot, qUnion:
		return e.existsQNode(n, ctx)
	default:
		return false, fmt.Errorf("nauxpda machine: truth of %v unsupported", n.kind)
	}
}

// existsQNode decides nonemptiness of a machine path subtree via the
// memoized holds judgment.
func (e *checker) existsQNode(n *qnode, ctx evalctx.Context) (bool, error) {
	for _, r := range e.doc.Nodes {
		ok, err := e.holdsQNode(n, ctx.Node, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// holdsQNode mirrors holdsSteps over the machine's binary path trees.
func (e *checker) holdsQNode(n *qnode, ctxNode, r *xmltree.Node) (bool, error) {
	switch n.kind {
	case qRoot:
		return e.holdsQNode(n.children[0], e.doc.Root, r)
	case qUnion:
		ok, err := e.holdsQNode(n.children[0], ctxNode, r)
		if err != nil || ok {
			return ok, err
		}
		return e.holdsQNode(n.children[1], ctxNode, r)
	case qCompose:
		for _, mid := range e.doc.Nodes {
			ok, err := e.holdsQNode(n.children[0], ctxNode, mid)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			ok, err = e.holdsQNode(n.children[1], mid, r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case qStep:
		if !axes.ReachableTest(n.step.Axis, n.step.Test, ctxNode, r) {
			return false, nil
		}
		if len(n.children) == 0 {
			return true, nil
		}
		pnew, snew := axes.CountSelect(n.step.Axis, n.step.Test, ctxNode, r)
		return e.truthQNode(n.children[0], evalctx.Context{Node: r, Pos: pnew, Size: snew})
	default:
		return false, fmt.Errorf("nauxpda machine: holds of %v unsupported", n.kind)
	}
}
