package nauxpda

import (
	"math/rand"
	"testing"

	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/parser"
)

// The literal machine agrees with the memoized checker on hand-picked
// Singleton-Success instances covering every node kind.
func TestMachineBasic(t *testing.T) {
	d, err := xmltree.ParseString(`<a><b>5</b><b>7</b><c><b>9</b></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	a := d.FindFirstElement("a")
	bs := d.FindAll(func(n *xmltree.Node) bool { return n.Name == "b" })
	c := d.FindFirstElement("c")
	one := func(n *xmltree.Node) value.Value { return value.NewNodeSet(n) }
	cases := []struct {
		q    string
		ctx  evalctx.Context
		v    value.Value
		want bool
	}{
		{"child::b", evalctx.At(a), one(bs[0]), true},
		{"child::b", evalctx.At(a), one(bs[2]), false},
		{"child::c/child::b", evalctx.At(a), one(bs[2]), true},
		{"child::c/child::b", evalctx.At(a), one(bs[0]), false},
		{"/a/c", evalctx.At(bs[0]), one(c), true},
		{"child::b | child::c", evalctx.At(a), one(c), true},
		{"child::b[position() = 2]", evalctx.At(a), one(bs[1]), true},
		{"child::b[position() = 2]", evalctx.At(a), one(bs[0]), false},
		{"child::b[2]", evalctx.At(a), one(bs[1]), true},
		{"descendant::b[last() = 3]", evalctx.At(a), one(bs[0]), true},
		{"boolean(child::c)", evalctx.At(a), value.Boolean(true), true},
		{"boolean(child::zz) or boolean(child::c)", evalctx.At(a), value.Boolean(true), true},
		{"boolean(child::zz) and boolean(child::c)", evalctx.At(a), value.Boolean(true), false},
		{"position() + 1", evalctx.Context{Node: a, Pos: 3, Size: 9}, value.Number(4), true},
		{"descendant::b[c]", evalctx.At(a), one(bs[2]), false},
		{"descendant::*[b]", evalctx.At(a), one(c), true},
		{"child::c[not(child::zz)]", evalctx.At(a), one(c), true},
	}
	for _, tc := range cases {
		got, err := MachineAccepts(parser.MustParse(tc.q), tc.ctx, tc.v, MachineOptions{})
		if err != nil {
			t.Fatalf("MachineAccepts(%q): %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("MachineAccepts(%q, %v) = %v, want %v", tc.q, tc.v, got, tc.want)
		}
	}
}

// Agreement property: the literal machine accepts exactly the instances
// the memoized checker accepts, on random small documents and pWF
// queries. This validates the deterministic simulation against the
// paper's automaton.
func TestMachineAgreesWithChecker(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	gen := enginetest.NewQueryGen(rng, enginetest.GenPWF)
	gen.MaxSteps = 2
	gen.MaxDepth = 2
	instances := 0
	for trial := 0; trial < 200 && instances < 400; trial++ {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes: 7, MaxFanout: 3, Tags: []string{"a", "b"},
		})
		q := gen.Query()
		expr := parser.MustParse(q)
		// The machine covers the pWF core without string functions.
		if err := Check(expr, Limits{NegationDepth: 0}); err != nil {
			continue
		}
		if _, err := buildQueryTree(expr); err != nil {
			continue
		}
		ctx := evalctx.Root(doc)
		for _, r := range doc.Nodes {
			want, err := SingletonSuccess(expr, ctx, value.NewNodeSet(r), Options{})
			if err != nil {
				t.Fatalf("checker failed on %q: %v", q, err)
			}
			got, err := MachineAccepts(expr, ctx, value.NewNodeSet(r), MachineOptions{})
			if err != nil {
				t.Fatalf("machine failed on %q: %v", q, err)
			}
			if got != want {
				t.Fatalf("machine/checker disagreement on %q, node #%d: machine %v, checker %v\ndoc: %s",
					q, r.Ord, got, want, doc.XMLString())
			}
			instances++
		}
	}
	if instances < 100 {
		t.Fatalf("only %d instances checked", instances)
	}
}

func TestMachineRejectsUnsupported(t *testing.T) {
	d, _ := xmltree.ParseString("<a/>")
	for _, q := range []string{"count(//a)", "//a[b = 'x']", "//a[b][c]"} {
		if _, err := MachineAccepts(parser.MustParse(q), evalctx.Root(d), value.NewNodeSet(d.Root), MachineOptions{}); err == nil {
			t.Errorf("machine accepted unsupported query %q", q)
		}
	}
}

func TestMachineRunBudget(t *testing.T) {
	// A wide document with a deep composition forces many runs; a tiny
	// budget must abort cleanly.
	d := xmltree.WideDocument(12, "r", "a")
	q := parser.MustParse("descendant::a/following-sibling::a/following-sibling::a")
	last := d.Nodes[len(d.Nodes)-1]
	_, err := MachineAccepts(q, evalctx.Root(d), value.NewNodeSet(last), MachineOptions{MaxRuns: 3})
	if err == nil {
		t.Skip("instance accepted within 3 runs; budget untestable here")
	}
}

func TestQueryTreeShapes(t *testing.T) {
	// π1/π2/π3 becomes left-nested compositions.
	n, err := buildQueryTree(parser.MustParse("a/b/c"))
	if err != nil {
		t.Fatal(err)
	}
	if n.kind != qCompose || n.children[0].kind != qCompose || n.children[1].kind != qStep {
		t.Fatalf("composition shape wrong: %v(%v, %v)", n.kind, n.children[0].kind, n.children[1].kind)
	}
	// Absolute path gets a root node.
	n, _ = buildQueryTree(parser.MustParse("/a"))
	if n.kind != qRoot || n.children[0].kind != qStep {
		t.Fatalf("root shape wrong: %v", n.kind)
	}
	// Bare "/" is self::node() at the root.
	n, _ = buildQueryTree(parser.MustParse("/"))
	if n.kind != qRoot || n.children[0].kind != qStep {
		t.Fatalf("bare-slash shape wrong: %v", n.kind)
	}
	// A numeric predicate becomes position() = k.
	n, _ = buildQueryTree(parser.MustParse("a[2]"))
	if n.kind != qStep || len(n.children) != 1 || n.children[0].kind != qRelOp {
		t.Fatalf("numeric predicate shape wrong")
	}
	// Iterated predicates are rejected.
	if _, err := buildQueryTree(parser.MustParse("a[b][c]")); err == nil {
		t.Fatal("iterated predicates accepted")
	}
}

// The Lemma 5.4 space claim, measured: the machine's stack depth is
// bounded by the query-tree depth and does not grow with the document.
func TestMachineStackBoundedByQuery(t *testing.T) {
	expr := parser.MustParse("descendant::a/child::a[descendant::a]/descendant::a")
	root, err := buildQueryTree(expr)
	if err != nil {
		t.Fatal(err)
	}
	qDepth := qtreeDepth(root)
	var prevStack int
	for _, docDepth := range []int{4, 8, 16} {
		d := xmltree.ChainDocument(docDepth, "a")
		target := d.Nodes[len(d.Nodes)-1]
		stats := &MachineStats{}
		if _, err := MachineAccepts(expr, evalctx.Root(d), value.NewNodeSet(target),
			MachineOptions{Stats: stats, MaxRuns: 1 << 22}); err != nil {
			t.Fatal(err)
		}
		if stats.MaxStack > qDepth {
			t.Fatalf("stack %d exceeds query-tree depth %d", stats.MaxStack, qDepth)
		}
		if prevStack != 0 && stats.MaxStack != prevStack {
			t.Fatalf("stack depth varies with document size: %d then %d", prevStack, stats.MaxStack)
		}
		prevStack = stats.MaxStack
		if stats.Runs == 0 || stats.Choices == 0 {
			t.Fatalf("stats not collected: %+v", stats)
		}
	}
}

func qtreeDepth(n *qnode) int {
	max := 0
	for _, c := range n.children {
		if d := qtreeDepth(c); d > max {
			max = d
		}
	}
	return max + 1
}

// The machine's bounded-negation complement path (truthQNode/holdsQNode)
// across every condition shape.
func TestMachineNegationComplement(t *testing.T) {
	d, err := xmltree.ParseString(`<a><b><c/></b><b/><e><c/></e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	a := d.FindFirstElement("a")
	bs := d.FindAll(func(n *xmltree.Node) bool { return n.Type == xmltree.ElementNode && n.Name == "b" })
	e := d.FindFirstElement("e")
	one := func(n *xmltree.Node) value.Value { return value.NewNodeSet(n) }
	cases := []struct {
		q    string
		v    value.Value
		node *xmltree.Node
		want bool
	}{
		// not over a bare path.
		{"child::b[not(child::c)]", one(bs[1]), nil, true},
		{"child::b[not(child::c)]", one(bs[0]), nil, false},
		// not over a composition.
		{"child::*[not(child::c/child::z)]", one(e), nil, true},
		// not over a union.
		{"child::b[not(child::c | child::z)]", one(bs[1]), nil, true},
		{"child::b[not(child::c | child::z)]", one(bs[0]), nil, false},
		// not over and/or.
		{"child::*[not(child::c and child::z)]", one(e), nil, true},
		{"child::*[not(child::c or child::z)]", one(bs[1]), nil, true},
		{"child::*[not(child::c or child::z)]", one(e), nil, false},
		// not over a relational operator.
		{"child::b[not(position() = 2)]", one(bs[0]), nil, true},
		{"child::b[not(position() = 2)]", one(bs[1]), nil, false},
		// not over an absolute path.
		{"child::b[not(/a/z)]", one(bs[0]), nil, true},
		// nested not.
		{"child::b[not(not(child::c))]", one(bs[0]), nil, true},
		{"child::b[not(not(child::c))]", one(bs[1]), nil, false},
		// not over a label test.
		{"child::b[not(T(X))]", one(bs[0]), nil, true},
	}
	for _, tc := range cases {
		got, err := MachineAccepts(parser.MustParse(tc.q), evalctx.At(a), tc.v, MachineOptions{})
		if err != nil {
			t.Fatalf("MachineAccepts(%q): %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("MachineAccepts(%q, %v) = %v, want %v", tc.q, tc.v, got, tc.want)
		}
		// Cross-check against the memoized checker.
		want2, err := SingletonSuccess(parser.MustParse(tc.q), evalctx.At(a), tc.v, Options{Limits: Limits{NegationDepth: 4}})
		if err != nil {
			t.Fatalf("checker on %q: %v", tc.q, err)
		}
		if got != want2 {
			t.Errorf("machine/checker differ on %q: %v vs %v", tc.q, got, want2)
		}
	}
}

func TestMachineScalarInstances(t *testing.T) {
	d, _ := xmltree.ParseString("<a><b/></a>")
	a := d.FindFirstElement("a")
	ctx := evalctx.Context{Node: a, Pos: 2, Size: 5}
	cases := []struct {
		q    string
		v    value.Value
		want bool
	}{
		{"last()", value.Number(5), true},
		{"last()", value.Number(4), false},
		{"position() * last()", value.Number(10), true},
		{"- position()", value.Number(-2), true},
		{"3 div 2", value.Number(1.5), true},
	}
	for _, tc := range cases {
		got, err := MachineAccepts(parser.MustParse(tc.q), ctx, tc.v, MachineOptions{})
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("MachineAccepts(%q, %v) = %v, want %v", tc.q, tc.v, got, tc.want)
		}
	}
	// Boolean false instances are rejected with a clear error (Definition
	// 5.3 checks true only).
	if _, err := MachineAccepts(parser.MustParse("boolean(child::b)"), ctx, value.Boolean(false), MachineOptions{}); err == nil {
		t.Error("Boolean(false) instance should be rejected")
	}
	// Multi-node node-sets are rejected.
	b := d.FindFirstElement("b")
	if _, err := MachineAccepts(parser.MustParse("child::b"), ctx, value.NewNodeSet(a, b), MachineOptions{}); err == nil {
		t.Error("two-node instance should be rejected")
	}
}

func TestQKindStrings(t *testing.T) {
	for k := qStep; k <= qLabel; k++ {
		if k.String() == "?" {
			t.Errorf("qkind %d unnamed", int(k))
		}
	}
}
