package nauxpda

import (
	"errors"
	"fmt"

	"xpathcomplexity/internal/xpath/ast"
)

// Fragment-violation errors. Each corresponds to one of the restrictions
// of Definitions 5.1 and 6.1 — the constructs whose presence pushes the
// combined complexity from LOGCFL up to P (Theorems 3.2, 5.7).
var (
	// ErrIteratedPredicates: steps of the form χ::t[e1][e2]... are
	// P-hard to add (Theorem 5.7 / Corollary 5.8).
	ErrIteratedPredicates = errors.New("iterated predicates are outside pXPath (Definition 6.1(1))")
	// ErrNegationDepth: not() beyond the configured bound (Theorems
	// 5.9/6.3 allow only constant-depth negation).
	ErrNegationDepth = errors.New("negation depth exceeds the configured bound (Theorem 5.9)")
	// ErrForbiddenFunction: count, sum, string, number and the listed
	// string functions force materialized node sets or unbounded scalars
	// (Definition 6.1(2)).
	ErrForbiddenFunction = errors.New("function is outside pXPath (Definition 6.1(2))")
	// ErrBooleanRelOp: relational operators over boolean operands can
	// encode negation (Definition 6.1(3)).
	ErrBooleanRelOp = errors.New("relational operator on boolean operand is outside pXPath (Definition 6.1(3))")
	// ErrArithDepth: arithmetic nesting beyond the configured constant
	// (Definition 5.1(3) / 6.1(4)).
	ErrArithDepth = errors.New("arithmetic nesting exceeds the configured bound (Definition 6.1(4))")
)

// forbiddenFunctions are the functions Definition 6.1(2) excludes from
// pXPath.
var forbiddenFunctions = map[string]bool{
	"not":   true, // handled separately via the negation bound
	"count": true, "sum": true, "string": true, "number": true,
	"local-name": true, "namespace-uri": true, "name": true,
	"string-length": true, "normalize-space": true,
}

// Limits configure the constant bounds of Definitions 5.1/6.1 and
// Theorem 5.9.
type Limits struct {
	// NegationDepth is the maximal nesting depth of not() accepted
	// (0 = pure pXPath; k > 0 = the bounded-negation extension of
	// Theorems 5.9/6.3).
	NegationDepth int
	// ArithDepth is the constant K of Definition 6.1(4). Zero means the
	// default of 8.
	ArithDepth int
}

func (l Limits) arithDepth() int {
	if l.ArithDepth == 0 {
		return 8
	}
	return l.ArithDepth
}

// Check verifies that expr lies in pXPath extended with negation up to
// lim.NegationDepth, returning a descriptive error naming the violated
// restriction otherwise.
func Check(expr ast.Expr, lim Limits) error {
	if m := ast.MaxPredicateSeq(expr); m >= 2 {
		return fmt.Errorf("%w: a step carries %d predicates", ErrIteratedPredicates, m)
	}
	if d := ast.NegationDepth(expr); d > lim.NegationDepth {
		return fmt.Errorf("%w: depth %d > bound %d", ErrNegationDepth, d, lim.NegationDepth)
	}
	if d := ast.ArithDepth(expr); d > lim.arithDepth() {
		return fmt.Errorf("%w: depth %d > bound %d", ErrArithDepth, d, lim.arithDepth())
	}
	for name := range ast.FunctionsUsed(expr) {
		if name != "not" && forbiddenFunctions[name] {
			return fmt.Errorf("%w: %s()", ErrForbiddenFunction, name)
		}
	}
	var walkErr error
	ast.Walk(expr, func(e ast.Expr) bool {
		if b, ok := e.(*ast.Binary); ok && b.Op.IsRelational() {
			if ast.StaticType(b.Left) == ast.TypeBoolean || ast.StaticType(b.Right) == ast.TypeBoolean {
				walkErr = fmt.Errorf("%w: %s", ErrBooleanRelOp, b)
				return false
			}
		}
		return walkErr == nil
	})
	return walkErr
}
