// Package fragment classifies XPath queries into the fragment lattice of
// Figure 1 of the paper and reports the combined complexity of query
// evaluation for the smallest fragment containing the query:
//
//	PF               ⊂ positive Core XPath ⊂ {Core XPath, pWF} ⊂ ...
//	NL-complete        LOGCFL-complete       P-complete  LOGCFL-complete
//
//	... Core XPath ⊂ WF,  pWF ⊂ {WF, pXPath},  WF ⊂ XPath, pXPath ⊂ XPath
//	    P-complete   P-c.                      XPath: P-complete
//
// The classifier also exposes the feature analysis (negation depth,
// iterated predicates, arithmetic depth, functions used, ...) that causes
// each fragment promotion, and recommends the cheapest evaluator.
package fragment

import (
	"sort"

	"xpathcomplexity/internal/counting"
	"xpathcomplexity/internal/xpath/ast"
)

// Fragment identifies a language fragment from Figure 1.
type Fragment int

// The fragments, ordered by classification preference (subset relations
// permitting): a query is labeled with the first fragment that contains
// it.
const (
	// PF: location paths without conditions (Section 4).
	PF Fragment = iota
	// PositiveCore: Core XPath without negation (Theorem 4.1/4.2).
	PositiveCore
	// PWF: the positive Wadler fragment (Definition 5.1).
	PWF
	// Core: Core XPath (Definition 2.5).
	Core
	// WF: the Wadler fragment (Definition 2.6).
	WF
	// PXPath: positive/parallel XPath (Definition 6.1).
	PXPath
	// XPath: everything this engine supports.
	XPath
)

var fragNames = [...]string{
	PF: "PF", PositiveCore: "positive Core XPath", PWF: "pWF",
	Core: "Core XPath", WF: "WF", PXPath: "pXPath", XPath: "XPath",
}

// String names the fragment as in the paper.
func (f Fragment) String() string {
	if int(f) < len(fragNames) {
		return fragNames[f]
	}
	return "unknown"
}

// ComplexityClass returns the combined complexity of query evaluation for
// the fragment, per Figure 1 and Theorems 3.2, 4.2, 4.3, 5.5, 6.2.
func (f Fragment) ComplexityClass() string {
	switch f {
	case PF:
		return "NL-complete"
	case PositiveCore, PWF, PXPath:
		return "LOGCFL-complete"
	case Core, WF, XPath:
		return "P-complete"
	default:
		return "unknown"
	}
}

// Parallelizable reports whether the fragment is highly parallelizable
// (inside NC², per LOGCFL ⊆ NC²).
func (f Fragment) Parallelizable() bool {
	switch f {
	case PF, PositiveCore, PWF, PXPath:
		return true
	default:
		return false
	}
}

// Features is the feature analysis driving classification.
type Features struct {
	// HasPredicates: any step carries a condition.
	HasPredicates bool
	// NegationDepth: maximal not() nesting (0 = negation-free).
	NegationDepth int
	// MaxPredicateSeq: longest [e1][e2]... sequence on one step.
	MaxPredicateSeq int
	// UsesPositionLast: position() or last() appears.
	UsesPositionLast bool
	// UsesArithmetic: numbers or arithmetic operators appear.
	UsesArithmetic bool
	// ArithDepth: maximal arithmetic nesting.
	ArithDepth int
	// UsesRelOp: a relational operator appears.
	UsesRelOp bool
	// RelOpOnNonNumbers: some relational operand is not number-typed
	// (excludes the query from WF, whose grammar only has nexpr RelOp
	// nexpr).
	RelOpOnNonNumbers bool
	// RelOpOnBooleans: some relational operand is boolean-typed (excluded
	// from pXPath by Definition 6.1(3)).
	RelOpOnBooleans bool
	// UsesStrings: string literals or string-valued functions appear.
	UsesStrings bool
	// ForbiddenFunctions: functions excluded from pXPath by Definition
	// 6.1(2) that appear in the query (not() is tracked by NegationDepth).
	ForbiddenFunctions []string
	// Functions: all functions used.
	Functions []string
	// UsesUnion: '|' appears.
	UsesUnion bool
	// UsesLabelTests: the T(l) extension appears.
	UsesLabelTests bool
}

// pxpathForbidden are the pXPath-excluded functions other than not().
var pxpathForbidden = map[string]bool{
	"count": true, "sum": true, "string": true, "number": true,
	"local-name": true, "namespace-uri": true, "name": true,
	"string-length": true, "normalize-space": true,
}

// coreFunctions are the only functions allowed in Core XPath (boolean
// conversions are admitted per Lemma 5.4's convention).
var coreFunctions = map[string]bool{
	"not": true, "boolean": true, "true": true, "false": true,
}

// wfFunctions are the functions of the Wadler fragment: Core plus
// position() and last().
var wfFunctions = map[string]bool{
	"not": true, "boolean": true, "true": true, "false": true,
	"position": true, "last": true,
}

// AnalyzeFeatures computes the feature vector of a query.
func AnalyzeFeatures(expr ast.Expr) Features {
	f := Features{
		NegationDepth:   ast.NegationDepth(expr),
		MaxPredicateSeq: ast.MaxPredicateSeq(expr),
		ArithDepth:      ast.ArithDepth(expr),
	}
	fns := ast.FunctionsUsed(expr)
	for name := range fns {
		f.Functions = append(f.Functions, name)
		if pxpathForbidden[name] {
			f.ForbiddenFunctions = append(f.ForbiddenFunctions, name)
		}
	}
	sort.Strings(f.Functions)
	sort.Strings(f.ForbiddenFunctions)
	f.UsesPositionLast = fns["position"] || fns["last"]
	stringFns := map[string]bool{
		"string": true, "concat": true, "starts-with": true, "contains": true,
		"substring-before": true, "substring-after": true, "substring": true,
		"string-length": true, "normalize-space": true, "translate": true,
		"local-name": true, "name": true, "namespace-uri": true,
	}
	for name := range fns {
		if stringFns[name] {
			f.UsesStrings = true
		}
	}
	ast.Walk(expr, func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Path:
			for _, s := range x.Steps {
				if len(s.Preds) > 0 {
					f.HasPredicates = true
				}
			}
		case *ast.Binary:
			switch {
			case x.Op == ast.OpUnion:
				f.UsesUnion = true
			case x.Op.IsArithmetic():
				f.UsesArithmetic = true
			case x.Op.IsRelational():
				f.UsesRelOp = true
				lt, rt := ast.StaticType(x.Left), ast.StaticType(x.Right)
				if lt != ast.TypeNumber || rt != ast.TypeNumber {
					f.RelOpOnNonNumbers = true
				}
				if lt == ast.TypeBoolean || rt == ast.TypeBoolean {
					f.RelOpOnBooleans = true
				}
			}
		case *ast.Unary:
			f.UsesArithmetic = true
		case *ast.Number:
			f.UsesArithmetic = true
		case *ast.Literal:
			f.UsesStrings = true
		case *ast.LabelTest:
			f.UsesLabelTests = true
		}
		return true
	})
	return f
}

// Classification is the result of classifying a query.
type Classification struct {
	// Features is the feature analysis.
	Features Features
	// Member reports, per fragment, whether the query belongs to it.
	Member map[Fragment]bool
	// Minimal is the smallest fragment containing the query (preference
	// order PF, positive Core, pWF, Core, WF, pXPath, XPath).
	Minimal Fragment
	// Counting reports membership in the counting fragment the
	// linear-time engines serve: Core XPath plus positional predicates
	// ([k], [last()], position()/last() comparisons) on
	// child/attribute/self/parent steps. It cuts across the Figure 1
	// lattice — positional queries classify as pWF or WF, yet the
	// counting ones still evaluate in one O(|D|·|Q|) pass.
	Counting bool
}

// ArithDepthBound is the constant K of Definitions 5.1(3)/6.1(4) used for
// pWF/pXPath membership.
const ArithDepthBound = 8

// Classify places a query in the Figure 1 lattice.
func Classify(expr ast.Expr) Classification {
	f := AnalyzeFeatures(expr)
	m := make(map[Fragment]bool)

	onlyFns := func(allowed map[string]bool) bool {
		for _, name := range f.Functions {
			if !allowed[name] {
				return false
			}
		}
		return true
	}
	isCoreShape := !f.UsesArithmetic && !f.UsesStrings && !f.UsesRelOp &&
		onlyFns(coreFunctions)
	m[PF] = isCoreShape && !f.HasPredicates && f.NegationDepth == 0 &&
		len(f.Functions) == 0 && !f.UsesLabelTests
	m[Core] = isCoreShape
	m[PositiveCore] = isCoreShape && f.NegationDepth == 0
	// Iterated predicates χ::t[e1][e2] are equivalent to χ::t[e1 and e2]
	// when position() and last() are absent (Remark 5.2), so they only
	// disqualify a query from pWF/pXPath when positional functions occur.
	iteratedHarmful := f.MaxPredicateSeq >= 2 && f.UsesPositionLast
	// WF: Core plus numeric expressions and RelOps over numbers.
	isWFShape := !f.UsesStrings && !f.RelOpOnNonNumbers && onlyFns(wfFunctions)
	m[WF] = isWFShape
	m[PWF] = isWFShape && f.NegationDepth == 0 && !iteratedHarmful &&
		f.ArithDepth <= ArithDepthBound
	// pXPath: Definition 6.1 over the full language.
	m[PXPath] = f.NegationDepth == 0 && !iteratedHarmful &&
		len(f.ForbiddenFunctions) == 0 && !f.RelOpOnBooleans &&
		f.ArithDepth <= ArithDepthBound
	m[XPath] = true

	minimal := XPath
	for _, frag := range []Fragment{PF, PositiveCore, PWF, Core, WF, PXPath} {
		if m[frag] {
			minimal = frag
			break
		}
	}
	return Classification{
		Features: f, Member: m, Minimal: minimal,
		Counting: counting.Check(expr) == nil,
	}
}

// Engine names the evaluator the facade should use for a fragment.
type Engine string

// Engine recommendations.
const (
	EngineCoreLinear Engine = "corelinear"
	EngineNAuxPDA    Engine = "nauxpda"
	EngineCVT        Engine = "cvt"
)

// RecommendEngine returns the cheapest evaluator for the query per its
// classification: the linear-time engine for the counting fragment
// (Core XPath and below, plus the countable positional queries), and
// the polynomial context-value-table engine otherwise.
func (c Classification) RecommendEngine() Engine {
	if c.Counting {
		return EngineCoreLinear
	}
	switch c.Minimal {
	case PF, PositiveCore, Core:
		return EngineCoreLinear
	case PWF, PXPath:
		return EngineCVT // materializing full results: cvt is cheaper than dom-loops
	default:
		return EngineCVT
	}
}

// RecommendDecisionEngine returns the evaluator for decision problems
// (Singleton-Success style membership checks), where the nauxpda engine's
// non-materializing evaluation shines.
func (c Classification) RecommendDecisionEngine() Engine {
	switch c.Minimal {
	case PF, PositiveCore, Core:
		return EngineCoreLinear
	case PWF, PXPath:
		return EngineNAuxPDA
	default:
		return EngineCVT
	}
}
