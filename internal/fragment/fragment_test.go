package fragment

import (
	"testing"

	"xpathcomplexity/internal/xpath/parser"
)

func classify(t *testing.T, q string) Classification {
	t.Helper()
	return Classify(parser.MustParse(q))
}

func TestMinimalFragment(t *testing.T) {
	cases := []struct {
		q    string
		want Fragment
	}{
		// PF: condition-free paths.
		{"/a/b/c", PF},
		{"//a/descendant::b", PF},
		{"a | b", PF},
		{"child::a/parent::*/following-sibling::b", PF},
		// Positive Core XPath: predicates without negation.
		{"//a[b]", PositiveCore},
		{"//a[b and c or d]", PositiveCore},
		{"a[b[c]]", PositiveCore},
		{"a[b][c]", PositiveCore}, // iterated preds are harmless without position() (Remark 5.2)
		{"a[T(G)]", PositiveCore},
		{"a[boolean(b)]", PositiveCore},
		// pWF: positional/arithmetic, single predicates, no negation.
		{"a[position() = 1]", PWF},
		{"a[position() + 1 = last()]", PWF},
		{"a[1]", PWF},
		{"a[last() > 2 and b]", PWF},
		// Core XPath: negation enters.
		{"//a[not(b)]", Core},
		{"a[not(b or not(c))]", Core},
		{"a[not(T(G))]", Core},
		// WF: negation + arithmetic, or iterated positional predicates.
		{"a[not(position() = 2)]", WF},
		{"a[not(b) and last() = 2]", WF},
		{"a[position() = 1][last() = 1]", WF}, // iterated preds with position: not pWF
		// pXPath: strings and general comparisons, still positive.
		{"a[@x = 'v']", PXPath},
		{"a[b = 'x']", PXPath},
		{"a[contains(b, 'x')]", PXPath},
		{"a[b = c]", PXPath},
		{"concat('a', 'b')", PXPath},
		// Full XPath: everything else.
		{"a[not(b = 'x')]", XPath},
		{"count(//a)", XPath},
		{"a[string-length(b) = 2]", XPath},
		{"sum(a) + 1", XPath},
		{"a[b = 'x'][c]", PXPath},             // iterated preds harmless without position()
		{"a[b = 'x'][position() = 1]", XPath}, // iterated preds + position(): P-hard territory
		{"a[(b and c) = true()]", XPath},      // boolean RelOp
		{"string(a)", XPath},
	}
	for _, tc := range cases {
		got := classify(t, tc.q)
		if got.Minimal != tc.want {
			t.Errorf("Classify(%q).Minimal = %v, want %v (features %+v)",
				tc.q, got.Minimal, tc.want, got.Features)
		}
	}
}

func TestMembershipMonotone(t *testing.T) {
	// Subset relations of Figure 1 must hold for every query: membership
	// in a fragment implies membership in its supersets.
	supersets := map[Fragment][]Fragment{
		PF:           {PositiveCore, Core, PWF, WF, PXPath, XPath},
		PositiveCore: {Core, PWF, WF, PXPath, XPath},
		PWF:          {WF, PXPath, XPath},
		Core:         {WF, XPath},
		WF:           {XPath},
		PXPath:       {XPath},
	}
	queries := []string{
		"/a/b", "//a[b]", "a[not(b)]", "a[position()=1]", "a[1][2]",
		"a[b='x']", "count(a)", "a[not(position()=1)]", "a | b[c]",
		"a[T(G) and not(T(R))]", "sum(a)>2",
	}
	for _, q := range queries {
		c := classify(t, q)
		for frag, sups := range supersets {
			if !c.Member[frag] {
				continue
			}
			for _, sup := range sups {
				if !c.Member[sup] {
					t.Errorf("query %q: member of %v but not of superset %v", q, frag, sup)
				}
			}
		}
	}
}

func TestComplexityClasses(t *testing.T) {
	cases := []struct {
		f    Fragment
		want string
		par  bool
	}{
		{PF, "NL-complete", true},
		{PositiveCore, "LOGCFL-complete", true},
		{PWF, "LOGCFL-complete", true},
		{PXPath, "LOGCFL-complete", true},
		{Core, "P-complete", false},
		{WF, "P-complete", false},
		{XPath, "P-complete", false},
	}
	for _, tc := range cases {
		if got := tc.f.ComplexityClass(); got != tc.want {
			t.Errorf("%v.ComplexityClass() = %q, want %q", tc.f, got, tc.want)
		}
		if got := tc.f.Parallelizable(); got != tc.par {
			t.Errorf("%v.Parallelizable() = %v, want %v", tc.f, got, tc.par)
		}
	}
}

func TestFeatures(t *testing.T) {
	f := AnalyzeFeatures(parser.MustParse("//a[not(b[1] = 'x')][count(c) > 2]"))
	if f.NegationDepth != 1 {
		t.Errorf("NegationDepth = %d", f.NegationDepth)
	}
	if f.MaxPredicateSeq != 2 {
		t.Errorf("MaxPredicateSeq = %d", f.MaxPredicateSeq)
	}
	if !f.UsesStrings || !f.UsesArithmetic || !f.UsesRelOp || !f.RelOpOnNonNumbers {
		t.Errorf("feature flags wrong: %+v", f)
	}
	if len(f.ForbiddenFunctions) != 1 || f.ForbiddenFunctions[0] != "count" {
		t.Errorf("ForbiddenFunctions = %v", f.ForbiddenFunctions)
	}
	f2 := AnalyzeFeatures(parser.MustParse("a[T(G)]"))
	if !f2.UsesLabelTests || f2.UsesStrings {
		t.Errorf("label features wrong: %+v", f2)
	}
}

func TestRecommendEngine(t *testing.T) {
	cases := []struct {
		q        string
		eval     Engine
		decision Engine
	}{
		{"/a/b", EngineCoreLinear, EngineCoreLinear},
		{"//a[not(b)]", EngineCoreLinear, EngineCoreLinear},
		// Counting-fragment positional queries evaluate linearly.
		{"a[position()=1]", EngineCoreLinear, EngineNAuxPDA},
		{"a[not(position()=1)]", EngineCoreLinear, EngineCVT},
		// Positional shapes outside the counting fragment do not.
		{"a[position()+1=last()]", EngineCVT, EngineNAuxPDA},
		{"//a/following-sibling::b[1]", EngineCVT, EngineNAuxPDA},
		{"a[b='x']", EngineCVT, EngineNAuxPDA},
		{"count(a)", EngineCVT, EngineCVT},
	}
	for _, tc := range cases {
		c := classify(t, tc.q)
		if got := c.RecommendEngine(); got != tc.eval {
			t.Errorf("RecommendEngine(%q) = %v, want %v", tc.q, got, tc.eval)
		}
		if got := c.RecommendDecisionEngine(); got != tc.decision {
			t.Errorf("RecommendDecisionEngine(%q) = %v, want %v", tc.q, got, tc.decision)
		}
	}
}

func TestFragmentStrings(t *testing.T) {
	for f := PF; f <= XPath; f++ {
		if f.String() == "unknown" {
			t.Errorf("fragment %d has no name", int(f))
		}
	}
}
