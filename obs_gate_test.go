// The flight-recorder overhead gate (`make obsgate`, part of `make
// check`): attaching EvalOptions.Flight must stay near-free on the two
// paths production traffic actually takes —
//
//   - disabled (Flight == nil): exactly the pre-flight evaluation, zero
//     extra allocations;
//   - sampled-out (recorder attached, evaluation under the slow
//     threshold and losing the reservoir draw): two atomic adds, one
//     random draw, no lock, no allocation beyond the pooled per-eval
//     scratch.
//
// The gate compares allocs-per-op between the two paths directly, so it
// is immune to workload drift: whatever the engines allocate, the
// recorder may add at most podCeiling on top. BENCH_OBS2.json
// (EXPERIMENTS.md EXP-OBS2) tracks the wall-clock side.
//
// The race detector's instrumentation allocates, and coverage
// instrumentation can too, so the gate only arms on plain `go test`.

//go:build !race

package xpathcomplexity

import (
	"testing"
	"time"

	"xpathcomplexity/internal/eval/evalctx"
)

// podCeiling is the tolerated allocs-per-op delta of the sampled-out
// recorder path over the disabled path. The budget covers nothing but
// pool-refill noise after a GC: the steady state is zero.
const podCeiling = 0.5

func TestObsGate(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates; gate runs uninstrumented")
	}
	d := prepBenchDoc()
	ctx := evalctx.Root(d)
	workloads := []struct {
		name   string
		query  string
		engine Engine
	}{
		{"cvt/descendant-chain", "//a//b//c", EngineCVT},
		{"corelinear/pred", "//a[b and not(c)]", EngineCoreLinear},
		{"vm/path", "//a/b", EngineVM},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			c := MustPrepare(w.query)
			measure := func(opts EvalOptions) float64 {
				eval := func() {
					if _, err := c.EvalOptions(ctx, opts); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 5; i++ {
					eval() // warm plan cache, index, pools
				}
				return testing.AllocsPerRun(200, eval)
			}
			disabled := measure(EvalOptions{Engine: w.engine})

			// A tiny reservoir and an unreachable slow threshold: after the
			// warm-up fills the 4 slots, virtually every evaluation is
			// sampled out — the hot path a production recorder sits on.
			fr := NewFlightRecorder(FlightRecorderConfig{
				RecentCapacity: 4,
				SlowThreshold:  time.Hour,
			})
			sampled := measure(EvalOptions{Engine: w.engine, Flight: fr})

			if delta := sampled - disabled; delta > podCeiling {
				t.Errorf("%s: recorder adds %.2f allocs per warm evaluation (disabled %.1f → sampled-out %.1f), ceiling %.1f — "+
					"the flight hot path regressed; see internal/obs/flight and finishFlight",
					w.name, delta, disabled, sampled, podCeiling)
			}
			if st := fr.Stats(); st.Seen == 0 {
				t.Fatalf("recorder saw no evaluations — the gate measured nothing")
			}
		})
	}
}
