package xpathcomplexity

import (
	"fmt"
	"strings"

	"xpathcomplexity/internal/eval/streaming"
	"xpathcomplexity/internal/fragment"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/rewrite"
)

// Explain renders a human-readable account of what the engine knows about
// a compiled query: its canonical form, its place in the paper's Figure 1
// lattice, the complexity consequences, the features that drove the
// classification, applicable rewrites, and the execution strategies the
// facade would choose.
func (q *Query) Explain() string {
	var b strings.Builder
	cls := q.Class
	f := cls.Features
	fmt.Fprintf(&b, "query:      %s\n", q.Source)
	fmt.Fprintf(&b, "canonical:  %s\n", q.Expr.String())
	fmt.Fprintf(&b, "fragment:   %s\n", cls.Minimal)
	fmt.Fprintf(&b, "complexity: %s (combined); data complexity in L; query complexity in L\n",
		cls.Minimal.ComplexityClass())
	if cls.Minimal.Parallelizable() {
		b.WriteString("parallel:   yes — inside NC² via LOGCFL (Theorems 4.1/5.5/6.2)\n")
	} else {
		b.WriteString("parallel:   unlikely — the fragment is P-complete (Theorem 3.2/5.7)\n")
	}

	var drivers []string
	if f.NegationDepth > 0 {
		drivers = append(drivers, fmt.Sprintf("negation (depth %d)", f.NegationDepth))
	}
	if f.MaxPredicateSeq >= 2 {
		drivers = append(drivers, fmt.Sprintf("iterated predicates (%d in sequence)", f.MaxPredicateSeq))
	}
	if f.UsesPositionLast {
		drivers = append(drivers, "position()/last()")
	}
	if f.UsesArithmetic {
		drivers = append(drivers, fmt.Sprintf("arithmetic (depth %d)", f.ArithDepth))
	}
	if f.UsesStrings {
		drivers = append(drivers, "strings")
	}
	if len(f.ForbiddenFunctions) > 0 {
		drivers = append(drivers, "pXPath-excluded functions: "+strings.Join(f.ForbiddenFunctions, ", "))
	}
	if f.RelOpOnBooleans {
		drivers = append(drivers, "relational operator on booleans (encodes negation, Def. 6.1(3))")
	}
	if len(drivers) > 0 {
		fmt.Fprintf(&b, "drivers:    %s\n", strings.Join(drivers, "; "))
	}

	var rewrites []string
	if _, changed := rewrite.FoldIteratedPredicates(q.Expr); changed {
		rewrites = append(rewrites, "iterated predicates fold into conjunctions (Remark 5.2)")
	}
	if f.NegationDepth > 0 {
		if pushed := rewrite.PushNegation(q.Expr); ast.NegationDepth(pushed) < f.NegationDepth {
			rewrites = append(rewrites, fmt.Sprintf("de Morgan push-down shrinks negation depth %d → %d (Theorem 5.9 preprocessing)",
				f.NegationDepth, ast.NegationDepth(pushed)))
		}
	}
	if len(rewrites) > 0 {
		fmt.Fprintf(&b, "rewrites:   %s\n", strings.Join(rewrites, "; "))
	}

	fmt.Fprintf(&b, "evaluate:   %s engine\n", engineName(cls.RecommendEngine()))
	fmt.Fprintf(&b, "decide:     %s engine (Singleton-Success, Definition 5.3)\n",
		engineName(cls.RecommendDecisionEngine()))
	if _, err := streaming.Compile(q.Expr); err == nil {
		b.WriteString("stream:     eligible — downward PF evaluates in one pass with O(depth) memory\n")
	}
	if prog, err := q.vmProgram(); err == nil {
		fmt.Fprintf(&b, "vm:         eligible — %d instructions, %d tests, %d labels, %d condition slots\n",
			len(prog.Code), len(prog.Tests), len(prog.Labels), prog.NumSlots)
		for _, line := range strings.Split(strings.TrimRight(prog.Disassemble(), "\n"), "\n") {
			b.WriteString("            | " + line + "\n")
		}
	}
	return b.String()
}

func engineName(e fragment.Engine) string { return string(e) }
