package xpathcomplexity

import (
	"net/http"

	"xpathcomplexity/internal/obs/httpobs"
)

// NewDebugMux builds the HTTP debug surface for a set of observability
// sinks: Prometheus text exposition on /metrics, the same snapshot as
// stable JSON on /debug/xpath/obs, the flight recorder on
// /debug/xpath/flight (?format=ndjson, ?n=k), plan- and result-cache
// statistics on /debug/xpath/plans, and net/http/pprof under
// /debug/pprof/. Any argument may be nil — its endpoints then serve
// empty documents. Pass DefaultPlanCache() to expose the package-level
// plan cache. See docs/OBSERVABILITY.md for the endpoint table.
//
//	mux := xpathcomplexity.NewDebugMux(metrics, recorder, xpathcomplexity.DefaultPlanCache(), cache)
//	go http.ListenAndServe("localhost:6060", mux)
func NewDebugMux(m *Metrics, fr *FlightRecorder, pc *PlanCache, rc *ResultCache) *http.ServeMux {
	cfg := httpobs.Config{Metrics: m, Flight: fr}
	if pc != nil {
		cfg.Plans = func() httpobs.PlanStats {
			s := pc.Stats()
			return httpobs.PlanStats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Size: s.Size}
		}
	}
	if rc != nil {
		cfg.Results = func() ResultCacheStats { return rc.Stats() }
	}
	return httpobs.NewMux(cfg)
}
