package xpathcomplexity_test

import (
	"fmt"

	xpc "xpathcomplexity"
)

const catalog = `<catalog>` +
	`<book year="1994"><title>Dune</title><price>12</price></book>` +
	`<book year="2001"><title>Teranesia</title><price>30</price></book>` +
	`<book year="2001"><title>Norstrilia</title><price>8</price><used/></book>` +
	`</catalog>`

// Compile parses and classifies a query in the paper's Figure 1 lattice.
func ExampleCompile() {
	q, err := xpc.Compile("//book[not(used)]/title")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Fragment())
	fmt.Println(q.ComplexityClass())
	// Output:
	// Core XPath
	// P-complete
}

// Select evaluates a node-set query from the document root with the
// automatically chosen engine.
func ExampleQuery_Select() {
	doc, _ := xpc.ParseDocumentString(catalog)
	ns, _ := xpc.MustCompile("//book[price < 15]/title").Select(doc)
	for _, n := range ns {
		fmt.Println(n.StringValue())
	}
	// Output:
	// Dune
	// Norstrilia
}

// EvalOptions selects a specific evaluation strategy; all engines agree
// on results and differ only in complexity.
func ExampleQuery_EvalOptions() {
	doc, _ := xpc.ParseDocumentString(catalog)
	q := xpc.MustCompile("count(//book[@year = 2001])")
	v, _ := q.EvalOptions(xpc.RootContext(doc), xpc.EvalOptions{Engine: xpc.EngineCVT})
	fmt.Println(v)
	// Output:
	// 2
}

// Matches decides the Singleton-Success problem (Definition 5.3 of the
// paper): membership of one node in the query result, decided by the
// LOGCFL procedure for pWF/pXPath queries.
func ExampleQuery_Matches() {
	doc, _ := xpc.ParseDocumentString(catalog)
	books := doc.FindAll(func(n *xpc.Node) bool { return n.Name == "book" })
	q := xpc.MustCompile("//book[position() = last()]")
	for i, b := range books {
		ok, _ := q.Matches(b)
		fmt.Printf("book %d: %v\n", i+1, ok)
	}
	// Output:
	// book 1: false
	// book 2: false
	// book 3: true
}

// ResultEquals decides the classical Success problem: does the query
// evaluate to exactly this value?
func ExampleQuery_ResultEquals() {
	doc, _ := xpc.ParseDocumentString(catalog)
	q := xpc.MustCompile("sum(//price)")
	ok, _ := q.ResultEquals(xpc.RootContext(doc), xpc.Number(50))
	fmt.Println(ok)
	// Output:
	// true
}
