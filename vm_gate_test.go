// The VM allocation regression gate (`make vmgate`, part of `make
// check`): warm bytecode-VM evaluations must stay under checked-in
// allocs-per-op ceilings. The VM's whole point is that the bound
// program plus pooled machine state make repeated evaluation nearly
// allocation-free — a change that reintroduces a per-node or per-step
// allocation in the dispatch loop fails here instead of surfacing as an
// EXP-VM throughput regression. Measured values as of EXP-VM: 5
// allocs/op warm on every workload (the pooled machine checkout, the
// result wrapper, and the arena handoff).
//
// The race detector's instrumentation allocates, and coverage
// instrumentation can too, so the gate only arms on plain `go test`.

//go:build !race

package xpathcomplexity

import (
	"testing"

	"xpathcomplexity/internal/eval/evalctx"
)

// vmAllocCeilings are the EXP-ALLOC warm workloads over the shared
// 4000-node random document, evaluated on the bytecode VM. Ceilings are
// upper bounds with headroom, not exact counts — tighten when the
// measured numbers improve, never loosen without understanding what
// regressed.
var vmAllocCeilings = []struct {
	name    string
	query   string
	ceiling float64
}{
	{"vm/descendant-chain", "//a//b//c", 10},
	{"vm/pred", "//a[b]/c", 10},
	{"vm/path", "/descendant::a/child::b/descendant::c", 10},
	{"vm/pred-neg", "//a[b and not(c)]", 10},
	// Positional families: the counting opcodes must stay on the pooled
	// arena — rank filtering happens in place on the frontier buffers.
	{"vm/pos-index", "//a[3]/b", 10},
	{"vm/pos-last", "//b[last()]", 10},
	{"vm/pos-range", "//a[position() < 3]/c", 10},
	{"vm/pos-rerank", "//a[b][position() = last()]", 10},
}

func TestVMAllocGate(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates; gate runs uninstrumented")
	}
	d := prepBenchDoc()
	ctx := evalctx.Root(d)
	for _, w := range vmAllocCeilings {
		t.Run(w.name, func(t *testing.T) {
			c := MustPrepare(w.query)
			opts := EvalOptions{Engine: EngineVM}
			eval := func() {
				if _, err := c.EvalOptions(ctx, opts); err != nil {
					t.Fatal(err)
				}
			}
			// Prime the plan cache (which carries the bytecode), the
			// document index and the machine pool, then average over
			// enough rounds to wash out a stray pool miss after a GC.
			for i := 0; i < 5; i++ {
				eval()
			}
			got := testing.AllocsPerRun(100, eval)
			if got > w.ceiling {
				t.Errorf("%s: %.1f allocs per warm evaluation, ceiling %.0f — the VM dispatch loop regressed; "+
					"profile with `make pprof` and compare EXPERIMENTS.md EXP-VM",
					w.name, got, w.ceiling)
			}
		})
	}
}
