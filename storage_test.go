package xpathcomplexity

import (
	"strings"
	"testing"
)

const storageTestXML = `<inv><item sku="s1"><qty>2</qty></item><item sku="s2"><qty>5</qty></item></inv>`

// The public parse surface must thread backend selection through and
// keep content identity (fingerprint) independent of the encoding.
func TestPublicBackendSelection(t *testing.T) {
	pd, err := ParseDocumentString(storageTestXML)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := ParseDocumentBackend(strings.NewReader(storageTestXML), BackendColumnar)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Backend() != BackendPointer || cd.Backend() != BackendColumnar {
		t.Fatalf("backends = %q / %q", pd.Backend(), cd.Backend())
	}
	if pd.Fingerprint() != cd.Fingerprint() {
		t.Fatal("backends disagree on content fingerprint")
	}
	if _, err := ParseDocumentBackend(strings.NewReader(storageTestXML), "no-such-backend"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if got := Backends(); len(got) != 2 {
		t.Fatalf("Backends() = %v", got)
	}
	if !ValidBackend(BackendColumnar) || ValidBackend("no-such-backend") {
		t.Fatal("ValidBackend misclassifies")
	}
	if c2 := CompactDocument(cd); c2 != cd {
		t.Fatal("CompactDocument of a columnar document must be the identity")
	}
	if pd.StoreSizeBytes() <= cd.StoreSizeBytes() {
		t.Fatalf("columnar store (%d B) not smaller than pointer (%d B)",
			cd.StoreSizeBytes(), pd.StoreSizeBytes())
	}
}

// The shared result cache is keyed by content fingerprint, so a columnar
// document hits entries populated from a pointer parse of the same
// content — and a re-parse with different content must miss.
func TestResultCacheAcrossBackendsAndReparse(t *testing.T) {
	pd, err := ParseDocumentString(storageTestXML)
	if err != nil {
		t.Fatal(err)
	}
	cd := CompactDocument(pd.Copy())
	cache := NewResultCache(0, 0)
	q := MustCompile("//item[qty > 1]")

	cold, err := q.EvalOptions(RootContext(pd), EvalOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := q.EvalOptions(RootContext(cd), EvalOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("columnar doc did not hit the entry cached from the pointer parse: %+v", st)
	}
	if ch, cc := canonValue(hit), canonValue(cold); ch != cc {
		t.Fatalf("cross-backend hit %s != cold %s", ch, cc)
	}
	hitNS, ok := hit.(NodeSet)
	if !ok || len(hitNS) == 0 {
		t.Fatalf("fixture query returned %v", hit)
	}
	for _, n := range hitNS {
		if n.Document() != cd {
			t.Fatal("cross-backend hit returned nodes of the other document instance")
		}
	}

	// Re-parse with changed content: new fingerprint, so the first
	// evaluation must miss (never served the stale entry) — and the
	// re-parse on the other backend then hits the fresh entry, because
	// content identity is still shared across encodings.
	changed := strings.Replace(storageTestXML, "<qty>5</qty>", "<qty>0</qty>", 1)
	for i, backend := range Backends() {
		rd, err := ParseDocumentBackend(strings.NewReader(changed), backend)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Fingerprint() == pd.Fingerprint() {
			t.Fatal("content change kept the fingerprint")
		}
		misses, hits := cache.Stats().Misses, cache.Stats().Hits
		got, err := q.EvalOptions(RootContext(rd), EvalOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && cache.Stats().Misses != misses+1 {
			t.Fatalf("backend %s: re-parsed document was served a stale entry", backend)
		}
		if i > 0 && cache.Stats().Hits != hits+1 {
			t.Fatalf("backend %s: re-parse missed the entry just cached for this content", backend)
		}
		if ns := got.(NodeSet); len(ns) != 1 {
			t.Fatalf("backend %s: re-parsed content evaluated wrong: %s", backend, canonValue(got))
		}
	}
}

// Compiled queries and EvalBatch must be backend-blind through the
// public API (run under -race: the hydrated view is shared).
func TestCompiledQueryOnColumnarDocument(t *testing.T) {
	cd, err := ParseDocumentBackend(strings.NewReader(storageTestXML), BackendColumnar)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Prepare("count(//qty)")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Eval(RootContext(cd))
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(Number); !ok || float64(n) != 2 {
		t.Fatalf("count(//qty) on columnar doc = %v", v)
	}
	// Warm pass over the now-built (zero-copy) index.
	v2, err := c.Eval(RootContext(cd))
	if err != nil {
		t.Fatal(err)
	}
	if canonValue(v2) != canonValue(v) {
		t.Fatalf("warm eval drifted: %s vs %s", canonValue(v2), canonValue(v))
	}
}
