# Standard targets; no dependencies beyond the Go toolchain.

.PHONY: all build vet test race fuzz bench experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/eval/parallel/ -run . && go test -race -run TestIntegrationConcurrent .

# Short fuzz sessions over the two parsers (regression seeds always run
# as part of 'test').
fuzz:
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/xpath/parser/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/

bench:
	go test -bench=. -benchmem ./...

# The machine-independent experiment suite reproducing every figure and
# table of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/xbench

examples:
	go run ./examples/quickstart
	go run ./examples/circuitsolver
	go run ./examples/reachability
	go run ./examples/bookstore
	go run ./examples/streaming

clean:
	go clean ./...
