# Standard targets; no dependencies beyond the Go toolchain.

.PHONY: all build vet test test-shuffle race test-race fuzz fuzz-short bench experiments profile pprof guard guard-race allocgate cachegate vmgate obsgate servegate storegate examples check clean

all: build vet test

# Everything a PR should pass: build, vet, tests, the allocation,
# cache-hit, VM, flight-recorder and serving regression gates, the
# race-enabled guard suite, the full race suite, a shuffled-order test
# pass and a short fuzz session per target.
check: all allocgate cachegate vmgate obsgate servegate storegate guard-race test-race test-shuffle fuzz-short

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The suite in randomized test order: catches tests that only pass by
# riding state (a warm shared cache, a populated plan cache, a built
# index) left behind by an earlier test.
test-shuffle:
	go test -shuffle=on ./...

race:
	go test -race ./internal/eval/parallel/ -run . && go test -race -run TestIntegrationConcurrent .

# The full test suite under the race detector (EvalBatch, concurrent
# index builds, plan-cache contention).
test-race:
	go test -race ./...

# Short fuzz sessions over the two parsers (regression seeds always run
# as part of 'test').
fuzz:
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/xpath/parser/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/

# 30s per fuzz target: both parsers plus the cross-engine differential
# suite (five engines, warm-vs-cold byte equality).
fuzz-short:
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/xpath/parser/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/
	go test -fuzz=FuzzDifferentialEngines -fuzztime=30s .

bench:
	go test -bench=. -benchmem ./...

# The machine-independent experiment suite reproducing every figure and
# table of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/xbench

# The observability experiment alone: naive-vs-cvt visit growth with the
# full metrics/trace layer enabled; writes BENCH_OBS.json (see
# docs/OBSERVABILITY.md and the EXP-OBS entry in EXPERIMENTS.md).
profile:
	go run ./cmd/xbench -run profile

# The resource-governance experiment alone: the same op budget kills the
# naive engine where cvt completes, plus a deadline row; writes
# BENCH_GUARD.json (see docs/ROBUSTNESS.md and EXP-GUARD in
# EXPERIMENTS.md).
guard:
	go run ./cmd/xbench -run guard

# Cancellation, budget and fallback tests under the race detector:
# concurrent batch cancellation, the parallel engine's shared guard, and
# the bytecode VM's shared-program/private-state seam.
guard-race:
	go test -race -run 'TestGuard|TestEvalBatch|TestVM' .

# The allocation regression gate: warm compiled-query evaluations must
# stay under the checked-in allocs-per-op ceilings of
# alloc_gate_test.go, then the alloc experiment reports the current
# steady-state numbers and refreshes BENCH_ALLOC.json (see
# docs/PERFORMANCE.md and EXP-ALLOC in EXPERIMENTS.md).
allocgate:
	go test -run TestAllocGate -count=1 .
	go run ./cmd/xbench -run alloc

# The bytecode-VM regression gate: warm VM evaluations must stay under
# the vm_gate_test.go allocs-per-op ceilings, then the VM experiment
# reports corelinear-vs-vm warm wall-clock and refreshes BENCH_VM.json
# (see docs/VM.md and EXP-VM in EXPERIMENTS.md).
vmgate:
	go test -run TestVMAllocGate -count=1 .
	go run ./cmd/xbench -run vm

# The cache-hit allocation gate: serving a cached result must stay under
# the cache_gate_test.go ceiling, then the cache experiment reports the
# uncached-vs-hit numbers and refreshes BENCH_CACHE.json (see
# docs/CACHING.md and EXP-CACHE in EXPERIMENTS.md).
cachegate:
	go test -run TestCacheGate -count=1 .
	go run ./cmd/xbench -run cache

# The flight-recorder overhead gate: attaching EvalOptions.Flight on
# the disabled and sampled-out paths must add at most the
# obs_gate_test.go allocs-per-op delta, then the obs2 experiment reports
# disabled-vs-sampled-vs-capture-all overhead and refreshes
# BENCH_OBS2.json (see docs/OBSERVABILITY.md and EXP-OBS2 in
# EXPERIMENTS.md).
obsgate:
	go test -run TestObsGate -count=1 .
	go run ./cmd/xbench -run obs2

# The serving gate: the xpathd daemon suite (admission, registry,
# tenancy, shedding — internal/server) plus the serve experiment's
# quick mode against a live in-process daemon, which must complete
# within the timeout, shed under saturation and expose the shed counter
# on /metrics. Writes a scratch BENCH_SERVE.quick.json (gitignored);
# the checked-in BENCH_SERVE.json comes from the full `xbench -run
# serve` (see docs/SERVING.md and EXP-SERVE in EXPERIMENTS.md).
servegate:
	go test -run 'TestServe|TestTenant|TestBudgetHeaders|TestCeilingClamp|TestEval|TestDocument|TestConcurrentTenants|TestHealthz|TestRegistry|TestFingerprint|TestLoadBackendSelection' -timeout 120s -count=1 ./internal/server/
	XBENCH_SERVE_QUICK=1 XBENCH_SERVE_OUT=BENCH_SERVE.quick.json go run ./cmd/xbench -run serve

# The storage backend gate: the columnar encoding must stay >=2x
# smaller than the pointer tree, and evaluating through a columnar
# document's hydrated view must match the pointer backend's warm
# allocs/op and stay within 10% of its wall time (store_gate_test.go).
# Then the store experiment reports the footprint and overhead tables
# and refreshes BENCH_STORE.json (see docs/STORAGE.md and EXP-STORE in
# EXPERIMENTS.md).
storegate:
	go test -run 'TestStoreGate' -count=1 .
	go run ./cmd/xbench -run store

# CPU + heap profiles of the hot evaluation paths, via the alloc
# experiment's warm workloads. Inspect with `go tool pprof cpu.out`
# (or mem.out); `top`, `list evalPath`, and `web` are good first moves.
pprof:
	go run ./cmd/xbench -run alloc -cpuprofile cpu.out -memprofile mem.out

examples:
	go run ./examples/quickstart
	go run ./examples/circuitsolver
	go run ./examples/reachability
	go run ./examples/bookstore
	go run ./examples/streaming

clean:
	go clean ./...
