// The storage backend regression gate (`make storegate`, part of `make
// check`): the columnar encoding must stay at least 2x smaller than the
// pointer tree on the EXP-ALLOC document families, and evaluating
// through a columnar-backed document's hydrated view must cost the same
// warm allocations and at most 10% more wall time than the pointer
// backend. A change that bloats the compact encoding or puts an
// allocation or indirection on the hydration seam fails here instead of
// surfacing as registry memory pressure in production. Reference
// numbers live in BENCH_STORE.json / EXPERIMENTS.md EXP-STORE.
//
// The race detector skews both allocation counts and wall time, so the
// gate only arms on plain `go test` (the alloc-gate pattern).

//go:build !race

package xpathcomplexity

import (
	"strings"
	"testing"
	"time"

	"xpathcomplexity/internal/xmltree"
)

// storeGateChainDoc is the EXP-ALLOC Figure-1 chain family: one deep
// <a><b><c> spine, the shape least favorable to per-tag interning.
func storeGateChainDoc() *xmltree.Document {
	const units = 200
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < units; i++ {
		b.WriteString("<a><b><c>")
	}
	for i := 0; i < units; i++ {
		b.WriteString("</c></b></a>")
	}
	b.WriteString("</r>")
	d, err := xmltree.ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return d
}

// TestStoreGate/memory holds the at-rest footprint contract: the
// columnar store must be at least half the size of the pointer tree for
// the same content (measured: 4.5-4.9x smaller, EXP-STORE).
func TestStoreGateMemory(t *testing.T) {
	families := []struct {
		name string
		doc  func() *xmltree.Document
	}{
		{"random-4k", prepBenchDoc},
		{"chain-200", storeGateChainDoc},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			pd := f.doc()
			cd := xmltree.Compact(f.doc())
			pb, cb := pd.StoreSizeBytes(), cd.StoreSizeBytes()
			if pb < 2*cb {
				t.Errorf("pointer store %d B vs columnar store %d B (%.2fx) — the columnar "+
					"encoding must stay at least 2x smaller; compare BENCH_STORE.json",
					pb, cb, float64(pb)/float64(cb))
			}
			if resident := cd.ResidentBytes(); resident <= cb {
				t.Errorf("columnar resident bytes %d not above store bytes %d — view accounting broke", resident, cb)
			}
		})
	}
}

// TestStoreGateEvalParity holds the evaluation-cost contract: a
// columnar-backed document evaluates through a hydrated view that is a
// plain *Node graph, so warm compiled-query evaluation must allocate
// exactly like the pointer backend and run within 10% of its wall time
// on the EXP-ALLOC workloads.
func TestStoreGateEvalParity(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates and slows hot paths; gate runs uninstrumented")
	}
	pd := prepBenchDoc()
	cd := xmltree.Compact(prepBenchDoc())
	pctx, cctx := RootContext(pd), RootContext(cd)
	for _, w := range allocCeilings {
		t.Run(w.name, func(t *testing.T) {
			c := MustPrepare(w.query)
			opts := EvalOptions{Engine: w.engine}
			evalOn := func(ctx Context) func() {
				return func() {
					if _, err := c.EvalOptions(ctx, opts); err != nil {
						t.Fatal(err)
					}
				}
			}
			peval, ceval := evalOn(pctx), evalOn(cctx)
			for i := 0; i < 5; i++ { // prime index, plan cache, pools
				peval()
				ceval()
			}

			pallocs := testing.AllocsPerRun(50, peval)
			callocs := testing.AllocsPerRun(50, ceval)
			if callocs > pallocs+1 {
				t.Errorf("warm allocs/op: columnar %.1f vs pointer %.1f — the hydrated view "+
					"must evaluate like a pointer tree", callocs, pallocs)
			}

			// Wall time: interleaved min-of-samples is robust to noise; a
			// failing measurement is retried before it counts.
			sample := func(eval func(), iters int) time.Duration {
				start := time.Now()
				for i := 0; i < iters; i++ {
					eval()
				}
				return time.Since(start)
			}
			per := sample(peval, 3) / 3
			iters := int(20*time.Millisecond/per) + 1
			for attempt := 0; ; attempt++ {
				pmin, cmin := time.Duration(1<<62), time.Duration(1<<62)
				for s := 0; s < 5; s++ {
					if d := sample(peval, iters); d < pmin {
						pmin = d
					}
					if d := sample(ceval, iters); d < cmin {
						cmin = d
					}
				}
				if float64(cmin) <= 1.10*float64(pmin) {
					break
				}
				if attempt == 2 {
					t.Errorf("warm wall time: columnar %v vs pointer %v per %d evals (%.1f%% over; ceiling 10%%)",
						cmin, pmin, iters, 100*(float64(cmin)/float64(pmin)-1))
					break
				}
			}
		})
	}
}
