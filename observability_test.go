package xpathcomplexity

import (
	"strings"
	"testing"
)

// TestMetricsReconcileWithCounter runs one query through every engine
// with a caller-supplied counter and asserts the registry's
// engine.<name>.ops counter equals the evalctx counter's delta — the two
// accounting paths must never drift (acceptance criterion of the
// observability layer).
func TestMetricsReconcileWithCounter(t *testing.T) {
	d := batchDoc(t, 11, 300)
	ctx := RootContext(d)
	q := MustCompile("//a[b]") // inside every engine's fragment
	for _, eng := range []Engine{EngineNaive, EngineCVT, EngineCoreLinear, EngineNAuxPDA, EngineParallel} {
		t.Run(eng.String(), func(t *testing.T) {
			m := NewMetrics()
			ctr := &Counter{}
			if _, err := q.EvalOptions(ctx, EvalOptions{Engine: eng, Counter: ctr, Metrics: m, Workers: 4}); err != nil {
				t.Fatal(err)
			}
			s := m.Snapshot()
			name := "engine." + eng.String() + ".ops"
			if got, want := s.Counter(name), ctr.Ops(); got != want || want <= 0 {
				t.Fatalf("%s = %d, Counter.Ops() = %d (want equal and positive)", name, got, want)
			}
			if got := s.Counter("engine." + eng.String() + ".evals"); got != 1 {
				t.Fatalf("engine.%s.evals = %d, want 1", eng, got)
			}
		})
	}
}

// TestMetricsSynthesizedCounter is the same reconciliation without a
// caller counter: engines synthesize a private one when metrics are on,
// so the ops counter must still be positive and match across repeated
// runs (the engines are deterministic).
func TestMetricsSynthesizedCounter(t *testing.T) {
	d := batchDoc(t, 12, 200)
	ctx := RootContext(d)
	q := MustCompile("//a[b]")
	for _, eng := range []Engine{EngineNaive, EngineCVT, EngineCoreLinear, EngineNAuxPDA, EngineParallel} {
		m1, m2 := NewMetrics(), NewMetrics()
		for _, m := range []*Metrics{m1, m2} {
			if _, err := q.EvalOptions(ctx, EvalOptions{Engine: eng, Metrics: m}); err != nil {
				t.Fatalf("%s: %v", eng, err)
			}
		}
		name := "engine." + eng.String() + ".ops"
		a, b := m1.Snapshot().Counter(name), m2.Snapshot().Counter(name)
		if a <= 0 || a != b {
			t.Fatalf("%s: synthesized-counter ops %d / %d, want equal and positive", eng, a, b)
		}
	}
}

// TestEvalBatchSharedCounter proves EvalBatch workers can share one
// evalctx.Counter: under -race this would fail before the counter became
// atomic, and the shared total must equal the sum of per-query totals
// measured sequentially (the engines are deterministic).
func TestEvalBatchSharedCounter(t *testing.T) {
	d := batchDoc(t, 13, 400)
	var want int64
	for _, qs := range batchQueries {
		ctr := &Counter{}
		// EvalBatch goes through Prepare, so the baseline must run the
		// same rewritten plans.
		if _, err := MustPrepare(qs).EvalOptions(RootContext(d), EvalOptions{Counter: ctr}); err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		want += ctr.Ops()
	}
	shared := &Counter{}
	for _, r := range EvalBatch(d, batchQueries, EvalOptions{Workers: 8, Counter: shared}) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Query, r.Err)
		}
	}
	if got := shared.Ops(); got != want {
		t.Fatalf("shared counter totals %d ops across workers, sequential total is %d", got, want)
	}
}

// TestEvalBatchMetricsAggregation checks the one-snapshot-per-batch
// contract: per-engine op counters sum across workers to the sequential
// total, and the plan-cache and index gauges are present.
func TestEvalBatchMetricsAggregation(t *testing.T) {
	d := batchDoc(t, 14, 400)
	seq := NewMetrics()
	for _, qs := range batchQueries {
		if _, err := MustPrepare(qs).EvalOptions(RootContext(d), EvalOptions{Metrics: seq}); err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
	}
	batch := NewMetrics()
	for _, r := range EvalBatch(d, batchQueries, EvalOptions{Workers: 8, Metrics: batch}) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Query, r.Err)
		}
	}
	ss, bs := seq.Snapshot(), batch.Snapshot()
	var seqOps, batchOps int64
	for name, v := range ss.Counters {
		if strings.HasPrefix(name, "engine.") && strings.HasSuffix(name, ".ops") {
			seqOps += v
		}
	}
	for name, v := range bs.Counters {
		if strings.HasPrefix(name, "engine.") && strings.HasSuffix(name, ".ops") {
			batchOps += v
		}
	}
	// The sequential runs above disable nothing, so both paths evaluate
	// the same plans over the same index; the merged counters must agree.
	if batchOps != seqOps || batchOps <= 0 {
		t.Fatalf("batch engine ops %d, sequential %d (want equal and positive)", batchOps, seqOps)
	}
	if bs.Gauge("plan_cache.size") <= 0 {
		t.Error("batch snapshot is missing plan_cache gauges")
	}
	if bs.Gauge("index.builds") <= 0 {
		t.Error("batch snapshot is missing index gauges")
	}
}
