package xpathcomplexity

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"xpathcomplexity/internal/fragment"
	"xpathcomplexity/internal/xpath/ast"
)

// guardChainDoc builds the EXP-OBS/EXP-GUARD document family: nested
// <a><b><c> units, the duplicate-context worst case for the naive engine
// (cubic visit growth on the pathological query below).
func guardChainDoc(t testing.TB, units int) *Document {
	t.Helper()
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < units; i++ {
		b.WriteString("<a><b><c>")
	}
	for i := 0; i < units; i++ {
		b.WriteString("</c></b></a>")
	}
	b.WriteString("</r>")
	d, err := ParseDocumentString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// pathologicalQuery is the EXP-OBS query: iterated descendant predicates
// give the naive engine its duplicate-context blowup while cvt stays
// bounded by the meaningful contexts.
const pathologicalQuery = "//a//b//c[.//a][.//b]"

func TestGuardPreCanceledContext(t *testing.T) {
	d := guardChainDoc(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{EngineAuto, EngineNaive, EngineCVT, EngineCoreLinear, EngineParallel} {
		t.Run(eng.String(), func(t *testing.T) {
			_, err := MustCompile("//a[b]").EvalOptions(RootContext(d), EvalOptions{
				Engine: eng, Context: ctx,
			})
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("pre-canceled context: err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err should unwrap to context.Canceled: %v", err)
			}
		})
	}
}

// Canceling a pathological naive evaluation mid-flight must return
// promptly: the guard polls the context every few hundred operations, so
// the return lands within milliseconds of the cancel, not after the
// (effectively unbounded) natural runtime.
func TestGuardAsyncCancelNaive(t *testing.T) {
	d := guardChainDoc(t, 200) // far beyond what naive can finish quickly
	q := MustCompile(pathologicalQuery)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineNaive, Context: ctx, DisableIndex: true,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Generous bound to stay robust under -race and loaded CI; the
	// uncanceled run would take orders of magnitude longer.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; should be prompt", elapsed)
	}
}

func TestGuardTimeout(t *testing.T) {
	d := guardChainDoc(t, 200)
	q := MustCompile(pathologicalQuery)
	start := time.Now()
	_, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineNaive, Timeout: 25 * time.Millisecond, DisableIndex: true,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline expiry should unwrap to context.DeadlineExceeded: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline enforcement took %v; should be prompt", elapsed)
	}
}

// The acceptance scenario of the issue: the same op budget that kills the
// naive engine on the pathological family lets cvt complete — the limit
// separates the engines exactly where the paper says the complexity does.
func TestGuardOpsBudgetSeparatesEngines(t *testing.T) {
	d := guardChainDoc(t, 84)
	q := MustCompile(pathologicalQuery)
	const budget = 2_000_000

	_, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineNaive, MaxOps: budget, DisableIndex: true,
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("naive under budget %d: err = %v, want ErrBudgetExceeded", budget, err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "ops" {
		t.Errorf("err = %v, want *BudgetError{Limit: ops}", err)
	}

	v, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineCVT, MaxOps: budget, DisableIndex: true,
	})
	if err != nil {
		t.Fatalf("cvt should complete within the same budget: %v", err)
	}
	if ns, ok := v.(NodeSet); !ok || len(ns) == 0 {
		t.Errorf("cvt result = %v, want non-empty node-set", v)
	}
}

// TestGuardBudgetUnitParity pins the guard's accounting to Counter units
// through the pooled scratch-arena evaluation paths: an unguarded run's
// exact op count is, as a MaxOps limit, the tightest budget that still
// completes — one unit less must fail. If pooling ever changed what work
// gets charged (a skipped re-allocation, a cached selection), the two
// ledgers would drift and this fails.
func TestGuardBudgetUnitParity(t *testing.T) {
	d := guardChainDoc(t, 12)
	for _, tc := range []struct {
		engine Engine
		query  string
	}{
		{EngineCVT, pathologicalQuery},
		{EngineCVT, "//c[position() = last()]"},
		{EngineCoreLinear, "//a[b or not(c)]"},
		{EngineParallel, "//a[b or not(c)]"},
	} {
		for _, disableIndex := range []bool{false, true} {
			q := MustCompile(tc.query)
			var ctr Counter
			if _, err := q.EvalOptions(RootContext(d), EvalOptions{
				Engine: tc.engine, Counter: &ctr, DisableIndex: disableIndex,
			}); err != nil {
				t.Fatalf("%v %q unguarded: %v", tc.engine, tc.query, err)
			}
			ops := ctr.Ops()
			if _, err := q.EvalOptions(RootContext(d), EvalOptions{
				Engine: tc.engine, MaxOps: ops, DisableIndex: disableIndex,
			}); err != nil {
				t.Errorf("%v %q (index=%v): failed at MaxOps=%d, its own op count: %v",
					tc.engine, tc.query, !disableIndex, ops, err)
			}
			if _, err := q.EvalOptions(RootContext(d), EvalOptions{
				Engine: tc.engine, MaxOps: ops - 1, DisableIndex: disableIndex,
			}); !errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("%v %q (index=%v): MaxOps=%d err = %v, want ErrBudgetExceeded",
					tc.engine, tc.query, !disableIndex, ops-1, err)
			}
		}
	}
}

func TestGuardMaxDepth(t *testing.T) {
	d := guardChainDoc(t, 10)
	// Deeply nested predicates force evaluator recursion.
	q := MustCompile("//a[b[c[a[b[c]]]]]")
	_, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineCVT, MaxDepth: 3,
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "depth" {
		t.Fatalf("err = %v, want *BudgetError{Limit: depth}", err)
	}
	// A bound deeper than the query passes.
	if _, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineCVT, MaxDepth: 1 << 20,
	}); err != nil {
		t.Errorf("generous depth bound should pass: %v", err)
	}
}

func TestGuardMaxNodeSet(t *testing.T) {
	d := guardChainDoc(t, 40)
	// The intermediate //a//b bag on the chain family is quadratic in
	// units — exactly the growth MaxNodeSet is there to cap.
	q := MustCompile("//a//b")
	_, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineNaive, MaxNodeSet: 50, DisableIndex: true,
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "node-set" {
		t.Fatalf("err = %v, want *BudgetError{Limit: node-set}", err)
	}
}

// A panic escaping an engine is recovered at the public Eval boundary and
// returned as a typed error — a malformed hand-built plan cannot crash
// the caller. (Parsed queries cannot reach this: the parser enforces
// function arity.)
func TestGuardPanicRecovery(t *testing.T) {
	expr := &ast.Call{Name: "count"} // count() with no args: engines index args[0]
	q := &Query{Source: "count()", Expr: expr, Class: fragment.Classify(expr)}
	d := guardChainDoc(t, 2)
	m := NewMetrics()
	_, err := q.EvalOptions(RootContext(d), EvalOptions{Engine: EngineCVT, Metrics: m})
	if !errors.Is(err, ErrEvalPanic) {
		t.Fatalf("err = %v, want ErrEvalPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PanicError", err)
	}
	if pe.Query != "count()" || pe.Value == nil || len(pe.Stack) == 0 {
		t.Errorf("PanicError incomplete: %+v", pe)
	}
	if got := m.Snapshot().Counter("eval.panics"); got != 1 {
		t.Errorf("eval.panics = %d, want 1", got)
	}
}

// The EngineAuto ladder records every selection and fallback in metrics.
func TestGuardAutoLadderMetrics(t *testing.T) {
	d := guardChainDoc(t, 5)
	ctx := RootContext(d)

	t.Run("streaming-selected", func(t *testing.T) {
		m := NewMetrics()
		v, err := MustCompile("/descendant::a/child::b").EvalOptions(ctx, EvalOptions{Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		if len(v.(NodeSet)) != 5 {
			t.Errorf("result = %d nodes, want 5", len(v.(NodeSet)))
		}
		s := m.Snapshot()
		if s.Counter("auto.selected.streaming") != 1 {
			t.Errorf("auto.selected.streaming = %d, want 1; counters: %v", s.Counter("auto.selected.streaming"), s.Counters)
		}
		if s.Counter("engine.streaming.evals") != 1 {
			t.Errorf("engine.streaming.evals = %d, want 1", s.Counter("engine.streaming.evals"))
		}
	})

	t.Run("fallback-to-vm", func(t *testing.T) {
		m := NewMetrics()
		if _, err := MustCompile("//a[not(b)]").EvalOptions(ctx, EvalOptions{Metrics: m}); err != nil {
			t.Fatal(err)
		}
		s := m.Snapshot()
		if s.Counter("auto.fallback.streaming") != 1 {
			t.Errorf("auto.fallback.streaming = %d, want 1; counters: %v", s.Counter("auto.fallback.streaming"), s.Counters)
		}
		if s.Counter("auto.selected.vm") != 1 {
			t.Errorf("auto.selected.vm = %d, want 1; counters: %v", s.Counter("auto.selected.vm"), s.Counters)
		}
		if s.Counter("engine.vm.evals") != 1 {
			t.Errorf("engine.vm.evals = %d, want 1; counters: %v", s.Counter("engine.vm.evals"), s.Counters)
		}
	})

	t.Run("nauxpda-on-decision-queries", func(t *testing.T) {
		// The decision rung fires only for statically boolean pWF/pXPath
		// queries — existence checks, where the non-materializing LOGCFL
		// engine is the right tool.
		m := NewMetrics()
		v, err := MustCompile("boolean(//a[position() = last()])").EvalOptions(ctx, EvalOptions{Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		if v != Boolean(true) {
			t.Errorf("result = %v, want true", v)
		}
		s := m.Snapshot()
		if s.Counter("auto.selected.nauxpda") != 1 {
			t.Errorf("auto.selected.nauxpda = %d, want 1; counters: %v", s.Counter("auto.selected.nauxpda"), s.Counters)
		}

		// The same query materialized is a node-set: the rung is skipped.
		// The positional predicate is in the counting fragment, so the
		// ladder lands on the bytecode VM.
		m2 := NewMetrics()
		if _, err := MustCompile("//a[position() = last()]").EvalOptions(ctx, EvalOptions{Metrics: m2}); err != nil {
			t.Fatal(err)
		}
		s2 := m2.Snapshot()
		if s2.Counter("auto.selected.nauxpda") != 0 {
			t.Errorf("materializing query took the nauxpda rung; counters: %v", s2.Counters)
		}
		if s2.Counter("auto.selected.vm") != 1 {
			t.Errorf("auto.selected.vm = %d, want 1; counters: %v", s2.Counter("auto.selected.vm"), s2.Counters)
		}

		// A positional shape outside the counting fragment misses the VM
		// rung with a tagged reason and lands on cvt.
		m3 := NewMetrics()
		if _, err := MustCompile("//a[position() + 1 = last()]").EvalOptions(ctx, EvalOptions{Metrics: m3}); err != nil {
			t.Fatal(err)
		}
		s3 := m3.Snapshot()
		if s3.Counter("vm.ineligible.positional-shape") != 1 {
			t.Errorf("vm.ineligible.positional-shape = %d, want 1; counters: %v",
				s3.Counter("vm.ineligible.positional-shape"), s3.Counters)
		}
		if s3.Counter("auto.selected.cvt") != 1 {
			t.Errorf("auto.selected.cvt = %d, want 1; counters: %v", s3.Counter("auto.selected.cvt"), s3.Counters)
		}
	})

	t.Run("resource-error-not-masked", func(t *testing.T) {
		// A budget verdict inside a ladder stage is the user's stop
		// request: it must surface, not trigger a retry on a slower
		// engine.
		m := NewMetrics()
		big := guardChainDoc(t, 84)
		_, err := MustCompile(pathologicalQuery).EvalOptions(RootContext(big), EvalOptions{
			Metrics: m, MaxOps: 1000, DisableIndex: true,
		})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
		if got := m.Snapshot().Counter("eval.budget_exceeded"); got != 1 {
			t.Errorf("eval.budget_exceeded = %d, want 1", got)
		}
	})
}

// The ladder's answers are indistinguishable from the reference engine's.
func TestGuardAutoMatchesCVT(t *testing.T) {
	d := guardChainDoc(t, 7)
	ctx := RootContext(d)
	for _, src := range []string{
		"/descendant::a/child::b", // streaming rung
		"//a//b//c",               // streaming rung, descendant chain
		"//a[b][c]",               // tree rung via predicates
		"//a[not(b)]",             // negation
		"//a[position()=2]",       // positional
		"count(//a)",              // function
	} {
		q := MustCompile(src)
		auto, err := q.EvalOptions(ctx, EvalOptions{})
		if err != nil {
			t.Fatalf("%q auto: %v", src, err)
		}
		ref, err := q.EvalOptions(ctx, EvalOptions{Engine: EngineCVT})
		if err != nil {
			t.Fatalf("%q cvt: %v", src, err)
		}
		if an, ok := auto.(NodeSet); ok {
			if !an.Equal(ref.(NodeSet)) {
				t.Errorf("%q: auto %d nodes != cvt %d nodes", src, len(an), len(ref.(NodeSet)))
			}
		} else if auto != ref {
			t.Errorf("%q: auto %v != cvt %v", src, auto, ref)
		}
	}
}

// Outcome metrics classify how evaluations end.
func TestGuardOutcomeMetrics(t *testing.T) {
	d := guardChainDoc(t, 30)
	q := MustCompile(pathologicalQuery)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMetrics()
	if _, err := q.EvalOptions(RootContext(d), EvalOptions{Context: ctx, Metrics: m}); err == nil {
		t.Fatal("expected cancellation")
	}
	if got := m.Snapshot().Counter("eval.canceled"); got != 1 {
		t.Errorf("eval.canceled = %d, want 1", got)
	}
}

// Per-query deadlines in EvalBatch: a Timeout applies to each query from
// the moment its evaluation starts, so an expired-on-arrival timeout
// fails every query with ErrCanceled while a generous one passes all.
func TestEvalBatchPerQueryTimeout(t *testing.T) {
	d := guardChainDoc(t, 20)
	queries := []string{"//a", "//b", "//c", "//a[b]", "//b//c", pathologicalQuery}

	res := EvalBatch(d, queries, EvalOptions{Timeout: time.Nanosecond})
	for i, r := range res {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("query %d (%s) with 1ns timeout: err = %v, want ErrCanceled", i, r.Query, r.Err)
		}
		if r.Value != nil {
			t.Errorf("query %d: partial value %v alongside cancellation", i, r.Value)
		}
	}

	res = EvalBatch(d, queries, EvalOptions{Timeout: time.Minute})
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("query %d (%s) with generous timeout: %v", i, r.Query, r.Err)
		}
	}
}

// Concurrent cancellation under the race detector: several workers run
// naive evaluations sharing one caller context; the cancel must stop all
// of them, each reporting either a complete result or ErrCanceled —
// never a partial value.
func TestEvalBatchConcurrentCancel(t *testing.T) {
	d := guardChainDoc(t, 60)
	queries := make([]string, 8)
	for i := range queries {
		queries[i] = pathologicalQuery
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := EvalBatch(d, queries, EvalOptions{
		Engine: EngineNaive, Context: ctx, Workers: 4, DisableIndex: true,
	})
	elapsed := time.Since(start)
	for i, r := range res {
		if r.Err == nil {
			continue // finished before the cancel landed
		}
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("query %d: err = %v, want ErrCanceled", i, r.Err)
		}
		if r.Value != nil {
			t.Errorf("query %d: partial value alongside cancellation", i)
		}
	}
	if elapsed > 10*time.Second {
		t.Errorf("batch cancellation took %v; should be prompt", elapsed)
	}
}

// The parallel engine shares one guard across its goroutines; an op
// budget is enforced on their combined total.
func TestGuardParallelEngineSharedBudget(t *testing.T) {
	d := guardChainDoc(t, 84)
	q := MustCompile("//a[b][c]")
	_, err := q.EvalOptions(RootContext(d), EvalOptions{
		Engine: EngineParallel, Workers: 4, MaxOps: 500, DisableIndex: true,
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// End-to-end conformance check for the round() fix: the sign of zero is
// observable through division, per XPath 1.0 §4.4.
func TestRoundNegativeZeroThroughEngines(t *testing.T) {
	d := guardChainDoc(t, 1)
	ctx := RootContext(d)
	for _, tc := range []struct {
		src  string
		want float64
	}{
		{"1 div round(-0.3)", math.Inf(-1)},
		{"1 div round(-0.5)", math.Inf(-1)},
		{"1 div round(0.3)", math.Inf(1)},
		{"round(0.49999999999999994)", 0},
		{"round(-1.5)", -1},
		{"round(2.5)", 3},
	} {
		// corelinear's fragment (Core XPath) has no arithmetic; the
		// full-XPath engines share funcs.Registry so two suffice.
		for _, eng := range []Engine{EngineNaive, EngineCVT} {
			v, err := MustCompile(tc.src).EvalOptions(ctx, EvalOptions{Engine: eng})
			if err != nil {
				t.Fatalf("%q on %s: %v", tc.src, eng, err)
			}
			if got := float64(v.(Number)); got != tc.want {
				t.Errorf("%q on %s = %v, want %v", tc.src, eng, got, tc.want)
			}
		}
	}
}
