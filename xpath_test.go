package xpathcomplexity

import (
	"strings"
	"testing"
)

const sampleDoc = `<library>` +
	`<book year="1994"><title>Dune</title><price>12</price></book>` +
	`<book year="2001"><title>Ptolemy</title><price>30</price></book>` +
	`</library>`

func TestCompileAndClassify(t *testing.T) {
	cases := []struct {
		q     string
		frag  Fragment
		class string
	}{
		{"/library/book", PF, "NL-complete"},
		{"//book[title]", PositiveCore, "LOGCFL-complete"},
		{"//book[not(title)]", Core, "P-complete"},
		{"//book[position() = 2]", PWF, "LOGCFL-complete"},
		{"//book[title = 'Dune']", PXPath, "LOGCFL-complete"},
		{"count(//book)", FullXPath, "P-complete"},
	}
	for _, tc := range cases {
		q, err := Compile(tc.q)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.q, err)
		}
		if q.Fragment() != tc.frag {
			t.Errorf("Fragment(%q) = %v, want %v", tc.q, q.Fragment(), tc.frag)
		}
		if q.ComplexityClass() != tc.class {
			t.Errorf("ComplexityClass(%q) = %q, want %q", tc.q, q.ComplexityClass(), tc.class)
		}
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("//a["); err == nil {
		t.Fatal("bad query compiled")
	}
	if _, err := Compile("$var"); err == nil || !strings.Contains(err.Error(), "variable") {
		t.Fatalf("variable error missing: %v", err)
	}
}

func TestSelect(t *testing.T) {
	d, err := ParseDocumentString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := MustCompile("//book[price > 20]/title").Select(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].StringValue() != "Ptolemy" {
		t.Fatalf("Select = %v", ns)
	}
}

func TestAllEnginesAgree(t *testing.T) {
	d, err := ParseDocumentString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	coreQ := MustCompile("//book[title and not(note)]")
	engines := []Engine{EngineAuto, EngineNaive, EngineCVT, EngineCoreLinear, EngineParallel}
	for _, e := range engines {
		v, err := coreQ.EvalOptions(RootContext(d), EvalOptions{Engine: e, NegationBound: 2})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if len(v.(NodeSet)) != 2 {
			t.Fatalf("%v: got %v", e, v)
		}
	}
	// nauxpda on a pWF query.
	pwfQ := MustCompile("//book[position() = last()]")
	for _, e := range []Engine{EngineNaive, EngineCVT, EngineNAuxPDA} {
		v, err := pwfQ.EvalOptions(RootContext(d), EvalOptions{Engine: e})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		ns := v.(NodeSet)
		if len(ns) != 1 {
			t.Fatalf("%v: got %v", e, ns)
		}
		if y, _ := ns[0].Attr("year"); y != "2001" {
			t.Fatalf("%v: wrong book %v", e, y)
		}
	}
}

func TestMatches(t *testing.T) {
	d, err := ParseDocumentString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	books := d.FindAll(func(n *Node) bool { return n.Name == "book" })
	q := MustCompile("//book[position() = 2]") // pWF: decision via nauxpda
	if got, err := q.Matches(books[1]); err != nil || !got {
		t.Fatalf("Matches(book2) = %v, %v", got, err)
	}
	if got, err := q.Matches(books[0]); err != nil || got {
		t.Fatalf("Matches(book1) = %v, %v", got, err)
	}
	// Core query decision path.
	qc := MustCompile("//book[not(title)]")
	if got, err := qc.Matches(books[0]); err != nil || got {
		t.Fatalf("core Matches = %v, %v", got, err)
	}
}

func TestAutoEngineSelection(t *testing.T) {
	d, _ := ParseDocumentString(sampleDoc)
	// A Core XPath query through auto must succeed (corelinear path).
	if _, err := MustCompile("//book[not(title)]").EvalRoot(d); err != nil {
		t.Fatal(err)
	}
	// A full-XPath query through auto must succeed (cvt path).
	v, err := MustCompile("sum(//price)").EvalRoot(d)
	if err != nil {
		t.Fatal(err)
	}
	if v != Number(42) {
		t.Fatalf("sum = %v", v)
	}
}

func TestEngineNames(t *testing.T) {
	for name, e := range EngineByName {
		if e.String() != name {
			t.Errorf("EngineByName[%q].String() = %q", name, e.String())
		}
	}
}

func TestSelectTypeError(t *testing.T) {
	d, _ := ParseDocumentString(sampleDoc)
	if _, err := MustCompile("count(//book)").Select(d); err == nil {
		t.Fatal("Select of a number query should error")
	}
}

// Matches folds harmless iterated predicates (Remark 5.2) so that queries
// like //book[title][price] still take the LOGCFL decision path.
func TestMatchesFoldsIteratedPredicates(t *testing.T) {
	d, err := ParseDocumentString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	books := d.FindAll(func(n *Node) bool { return n.Name == "book" })
	q := MustCompile("//book[title][price]")
	if q.Fragment() == PWF {
		t.Fatal("test premise: raw query should not be pWF-minimal") // it is positive core
	}
	for _, b := range books {
		got, err := q.Matches(b)
		if err != nil {
			t.Fatalf("Matches: %v", err)
		}
		if !got {
			t.Fatalf("book %v should match", b.Ord)
		}
	}
	// Double negation normalizes away inside Matches.
	q2 := MustCompile("//book[not(not(title))]")
	got, err := q2.Matches(books[0])
	if err != nil || !got {
		t.Fatalf("Matches(not(not)) = %v, %v", got, err)
	}
}

func TestExplain(t *testing.T) {
	cases := []struct {
		q       string
		substrs []string
	}{
		{"/a/b", []string{"PF", "NL-complete", "inside NC²", "stream:", "corelinear"}},
		{"//a[not(b)]", []string{"Core XPath", "P-complete", "negation (depth 1)", "vm:", "stepcond", "invstep"}},
		{"//a[b][c]", []string{"fold into conjunctions"}},
		{"//a[not(not(b))]", []string{"de Morgan push-down shrinks negation depth 2 → 0"}},
		{"//a[position() = 1]", []string{"pWF", "position()/last()", "nauxpda"}},
		{"count(//a[b = true()])", []string{"pXPath-excluded functions: count", "relational operator on booleans"}},
	}
	for _, tc := range cases {
		got := MustCompile(tc.q).Explain()
		for _, want := range tc.substrs {
			if !strings.Contains(got, want) {
				t.Errorf("Explain(%q) missing %q:\n%s", tc.q, want, got)
			}
		}
	}
	// Non-streamable queries must not claim streaming eligibility.
	if strings.Contains(MustCompile("//a[b]").Explain(), "stream:") {
		t.Error("predicated query claimed streaming eligibility")
	}
	// Counting-fragment positional queries compile to bytecode with a
	// positional-condition pool; shapes outside the fragment must not
	// claim VM eligibility.
	if got := MustCompile("//a[position() = 2]").Explain(); !strings.Contains(got, "vm:") ||
		!strings.Contains(got, "poscond") {
		t.Errorf("counting positional query missing vm section or poscond pool:\n%s", got)
	}
	if strings.Contains(MustCompile("//a[position() + 1 = last()]").Explain(), "vm:") {
		t.Error("non-counting positional query claimed vm eligibility")
	}
}

func TestWhy(t *testing.T) {
	d, err := ParseDocumentString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	books := d.FindAll(func(n *Node) bool { return n.Name == "book" })
	q := MustCompile("//book[title and position() = 2]")
	why, err := q.Why(books[1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(why, "IS selected") || !strings.Contains(why, "Table 1 rows") {
		t.Errorf("Why positive wrong:\n%s", why)
	}
	why, err = q.Why(books[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(why, "NOT selected") {
		t.Errorf("Why negative wrong:\n%s", why)
	}
	// Out-of-fragment queries report a clear error.
	if _, err := MustCompile("//book[count(title) = 1]").Why(books[0]); err == nil {
		t.Error("count() query should not produce a certificate")
	}
}
