// Benchmarks reproducing every figure and table of the paper (see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// results). Machine-independent operation-count versions of the same
// experiments live in cmd/xbench; the benchmarks here measure wall time
// with testing.B.
package xpathcomplexity

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xpathcomplexity/internal/circuit"
	"xpathcomplexity/internal/eval/corelinear"
	"xpathcomplexity/internal/eval/cvt"
	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/eval/naive"
	"xpathcomplexity/internal/eval/nauxpda"
	"xpathcomplexity/internal/eval/parallel"
	"xpathcomplexity/internal/eval/streaming"
	"xpathcomplexity/internal/graph"
	"xpathcomplexity/internal/reduction"
	"xpathcomplexity/internal/xmltree"
	"xpathcomplexity/internal/xpath/ast"
	"xpathcomplexity/internal/xpath/parser"
)

// --- Figure 1: per-fragment engine scaling ---------------------------------

// BenchmarkF1_Oscillation runs the parent/child oscillation query family:
// the naive engine is exponential in the query length, cvt and corelinear
// polynomial (the combined-complexity landscape of Figure 1).
func BenchmarkF1_Oscillation(b *testing.B) {
	d, err := xmltree.ParseString("<a><b/><b/><b/></a>")
	if err != nil {
		b.Fatal(err)
	}
	ctx := evalctx.Root(d)
	for _, steps := range []int{3, 6, 9} {
		q := "//b"
		for i := 0; i < steps; i++ {
			q += "/parent::a/b"
		}
		expr := parser.MustParse(q)
		b.Run(fmt.Sprintf("naive/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := naive.Evaluate(expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cvt/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cvt.Evaluate(expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("corelinear/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 2/3: carry-bit adders via Theorem 3.2 --------------------------

// BenchmarkF2_CarryAdder builds and solves n-bit adder carry circuits
// through the Theorem 3.2 reduction.
func BenchmarkF2_CarryAdder(b *testing.B) {
	for _, bits := range []int{2, 4, 8} {
		a := make([]bool, bits)
		bb := make([]bool, bits)
		for i := range a {
			a[i] = i%2 == 0
			bb[i] = true
		}
		c, err := circuit.CarryBitN(bits, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		red, err := reduction.BuildTheorem32(c, reduction.Options32{})
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5: reachability via PF ------------------------------------------

// BenchmarkF5_Reachability measures PF-query reachability on random
// digraphs of growing size.
func BenchmarkF5_Reachability(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 12} {
		g := graph.Random(rng, n, 0.25)
		red, err := reduction.BuildTheorem43(g, 0, n-1)
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1: the NAuxPDA engine vs cvt on pWF ------------------------------

// BenchmarkT1_SingletonSuccess compares deciding membership of one node
// (nauxpda, no materialization) against materializing the full result
// (cvt) on a pWF query.
func BenchmarkT1_SingletonSuccess(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 60, MaxFanout: 3, Tags: []string{"a", "b", "c"}})
	expr := parser.MustParse("//a[position() = last()]/descendant::b[c]")
	ctx := evalctx.Root(doc)
	target := doc.Nodes[len(doc.Nodes)/2]
	b.Run("nauxpda-decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := expr
			if _, err := nauxpda.SingletonSuccess(e, ctx, nodeSet1(target), nauxpda.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cvt-materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cvt.Evaluate(expr, ctx, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func nodeSet1(n *Node) NodeSet { return NodeSet{n} }

// --- Theorem 3.2: naive vs cvt on reduction queries ------------------------

// BenchmarkT32_NaiveVsCVT runs Fibonacci-chain reduction queries: the
// exponential-vs-polynomial separation of the P-hardness proof.
func BenchmarkT32_NaiveVsCVT(b *testing.B) {
	for _, depth := range []int{4, 8, 12} {
		c := circuit.FibonacciChain(depth, true, true)
		red, err := reduction.BuildTheorem32(c, reduction.Options32{})
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		b.Run(fmt.Sprintf("naive/gates=%d", depth+2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := naive.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cvt/gates=%d", depth+2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cvt.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 4.2: SAC¹ DAG queries ------------------------------------------

// BenchmarkT42_QueryGrowth evaluates the exponentially-unfolding (but
// polynomially-shared) positive queries of the LOGCFL-hardness proof.
func BenchmarkT42_QueryGrowth(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, depth := range []int{4, 8} {
		c := circuit.RandomSAC1(rng, 4, depth, 5)
		red, err := reduction.BuildTheorem42(c)
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		b.Run(fmt.Sprintf("corelinear/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 5.7: iterated predicates --------------------------------------

// BenchmarkT57_IteratedPredicates evaluates the negation-free
// iterated-predicate encoding with cvt.
func BenchmarkT57_IteratedPredicates(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, gates := range []int{4, 8} {
		c := circuit.RandomMonotone(rng, 3, gates, 3)
		red, err := reduction.BuildTheorem57(c)
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		b.Run(fmt.Sprintf("gates=%d", gates+3), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cvt.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 5.9: bounded negation ------------------------------------------

// BenchmarkT59_NegationDepth measures the nauxpda engine as the negation
// bound grows.
func BenchmarkT59_NegationDepth(b *testing.B) {
	d := xmltree.BalancedDocument(5, 2, []string{"a", "b"})
	ctx := evalctx.Root(d)
	q := "descendant::a[b]"
	for depth := 0; depth <= 4; depth += 2 {
		expr := parser.MustParse("//a[" + q + "]")
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nauxpda.Evaluate(expr, ctx, nauxpda.Options{Limits: nauxpda.Limits{NegationDepth: depth}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		q = "not(descendant::b[" + q + "])"
		q = "not(descendant::b[" + q + "])"
	}
}

// --- Theorem 7.1: fixed query, growing tree --------------------------------

// BenchmarkT71_DataScaling evaluates the fixed tree-reachability query on
// growing trees (data complexity).
func BenchmarkT71_DataScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{64, 256, 1024} {
		tree := graph.RandomTree(rng, n)
		red, err := reduction.BuildTheorem71(tree, 0, n-1)
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 7.2: data complexity of full XPath -----------------------------

// BenchmarkT72_DataComplexity scales documents under a fixed full-XPath
// query (cvt engine).
func BenchmarkT72_DataComplexity(b *testing.B) {
	expr := parser.MustParse("//a[count(b) > 1 and not(c)]/b[position() = last()]")
	rng := rand.New(rand.NewSource(6))
	for _, size := range []int{100, 400, 1600} {
		doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: size, MaxFanout: 4, Tags: []string{"a", "b", "c"}})
		ctx := evalctx.Root(doc)
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cvt.Evaluate(expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 7.3: query complexity ------------------------------------------

// BenchmarkT73_QueryComplexity scales queries over a fixed document.
func BenchmarkT73_QueryComplexity(b *testing.B) {
	doc := xmltree.BalancedDocument(7, 2, []string{"a", "b", "c"})
	ctx := evalctx.Root(doc)
	q := "//a"
	for _, steps := range []int{4, 12, 20} {
		for cur := 0; cur < steps; cur += 4 {
			_ = cur
		}
		query := q
		for i := 0; i < steps; i += 4 {
			query += "/descendant::b[a]/ancestor::a[b]/b/parent::a"
		}
		expr := parser.MustParse(query)
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Remark 5.6: parallel speedup -------------------------------------------

// BenchmarkPar_Workers measures the parallel evaluator by worker count
// (speedup requires a multicore host; see EXPERIMENTS.md).
func BenchmarkPar_Workers(b *testing.B) {
	doc := xmltree.BalancedDocument(13, 2, []string{"a", "b", "c"})
	expr := parser.MustParse("//a[descendant::b[following::c] or descendant::c[preceding::b] or following::b[ancestor::c] or preceding::c[descendant::b]]")
	ctx := evalctx.Root(doc)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Evaluate(expr, ctx, parallel.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// BenchmarkAblation_CVTContextKeying compares adaptive context keys
// (position-insensitive subexpressions keyed by node only) against full
// (node, pos, size) keys.
func BenchmarkAblation_CVTContextKeying(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 300, MaxFanout: 4, Tags: []string{"a", "b", "c"}})
	expr := parser.MustParse("//a[descendant::b[c and position() = 1]]/b[last()]")
	ctx := evalctx.Root(doc)
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cvt.EvaluateOptions(expr, ctx, cvt.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-keys", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cvt.EvaluateOptions(expr, ctx, cvt.Options{DisableAdaptiveKeys: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_NAuxPDAMemo compares the memoized certificate search
// against the raw nondeterministic search.
func BenchmarkAblation_NAuxPDAMemo(b *testing.B) {
	d := xmltree.ChainDocument(16, "a")
	expr := parser.MustParse("descendant::a/descendant::a/descendant::a/descendant::a/descendant::a/descendant::a")
	ctx := evalctx.Root(d)
	b.Run("memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nauxpda.Evaluate(expr, ctx, nauxpda.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nauxpda.Evaluate(expr, ctx, nauxpda.Options{DisableMemo: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_InvertedAxes compares the corelinear backward
// condition evaluation (one pass per condition) against probing the
// condition per node with the memoized cvt engine.
func BenchmarkAblation_InvertedAxes(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 500, MaxFanout: 4, Tags: []string{"a", "b", "c"}})
	expr := parser.MustParse("//a[descendant::b[following-sibling::c]]")
	ctx := evalctx.Root(doc)
	b.Run("inverted-axes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := corelinear.Evaluate(expr, ctx, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-node-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cvt.Evaluate(expr, ctx, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_LabelEncoding compares native label sets (T(l))
// against the paper's child::l lowering on Theorem 3.2 instances.
func BenchmarkAblation_LabelEncoding(b *testing.B) {
	c := circuit.FibonacciChain(8, true, true)
	for _, lower := range []bool{false, true} {
		red, err := reduction.BuildTheorem32(c, reduction.Options32{LowerLabels: lower})
		if err != nil {
			b.Fatal(err)
		}
		ctx := evalctx.Root(red.Doc)
		name := "native-T"
		if lower {
			name = "lowered-child"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corelinear.Evaluate(red.Expr, ctx, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ParallelGrain compares branch- vs data-parallel
// evaluation grains.
func BenchmarkAblation_ParallelGrain(b *testing.B) {
	doc := xmltree.BalancedDocument(13, 2, []string{"a", "b", "c"})
	expr := parser.MustParse("//a[descendant::b[following::c] or preceding::c[descendant::b] or following::b[ancestor::c]]")
	ctx := evalctx.Root(doc)
	for _, g := range []parallel.Grain{parallel.GrainNone, parallel.GrainBranch, parallel.GrainData, parallel.GrainBoth} {
		b.Run(g.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Evaluate(expr, ctx, parallel.Options{Grain: g}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PrePostVsWalk compares interval-based ancestor testing
// against parent-chain walking.
func BenchmarkAblation_PrePostVsWalk(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 2000, MaxFanout: 3})
	nodes := doc.Nodes
	b.Run("prepost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := nodes[i%len(nodes)]
			m := nodes[(i*7)%len(nodes)]
			_ = n.IsAncestorOf(m)
		}
	})
	chainAnc := func(a, x *xmltree.Node) bool {
		for p := x.Parent; p != nil; p = p.Parent {
			if p == a {
				return true
			}
		}
		return false
	}
	b.Run("chain-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := nodes[i%len(nodes)]
			m := nodes[(i*7)%len(nodes)]
			_ = chainAnc(n, m)
		}
	})
}

// BenchmarkParser measures query compilation.
func BenchmarkParser(b *testing.B) {
	q := "/descendant::a/child::b[descendant::c and not(following-sibling::d)]/following::*[position() + 1 = last()]"
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryGenCorpus measures random-query agreement throughput, the
// engine-equivalence property that underpins every experiment.
func BenchmarkQueryGenCorpus(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	gen := enginetest.NewQueryGen(rng, enginetest.GenCore)
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 50, MaxFanout: 3})
	ctx := evalctx.Root(doc)
	queries := make([]ast.Expr, 64)
	for i := range queries {
		queries[i] = parser.MustParse(gen.Query())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corelinear.Evaluate(queries[i%len(queries)], ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_EagerVsLazyTables compares the original [VLDB'02]
// eager full-table construction against the [ICDE'03] lazy
// meaningful-contexts mode that this repository defaults to — the
// improvement the paper's introduction describes.
func BenchmarkAblation_EagerVsLazyTables(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	doc := xmltree.RandomDocument(rng, xmltree.GenConfig{Nodes: 400, MaxFanout: 4, Tags: []string{"a", "b", "c"}})
	expr := parser.MustParse("/a//b[c and not(descendant::a)]")
	ctx := evalctx.Root(doc)
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cvt.EvaluateOptions(expr, ctx, cvt.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cvt.EvaluateOptions(expr, ctx, cvt.Options{EagerTables: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_NCClosures compares the sequential single-sweep
// closure operations against the log-depth NC algorithms (pointer
// doubling / parallel RMQ) on a deep document. On a single-core host the
// NC versions lose by their Θ(|D| log |D|) work — the classic NC
// work-vs-depth trade-off; their payoff is depth, not work.
func BenchmarkAblation_NCClosures(b *testing.B) {
	doc := xmltree.ChainDocument(4096, "a")
	expr := parser.MustParse("//a[descendant::a]/ancestor::a")
	ctx := evalctx.Root(doc)
	b.Run("sequential-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Evaluate(expr, ctx, parallel.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nc-doubling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Evaluate(expr, ctx, parallel.Options{NCClosures: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreaming compares the one-pass streaming engine against
// parse-then-evaluate on downward PF queries over a large document.
func BenchmarkStreaming(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<log>")
	for i := 0; i < 20_000; i++ {
		fmt.Fprintf(&sb, "<entry><sev>info</sev><msg>m%d</msg></entry>", i)
	}
	sb.WriteString("</log>")
	src := sb.String()
	prog, err := streaming.Compile(parser.MustParse("/log/entry/msg"))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Count(strings.NewReader(src)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse+corelinear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc, err := xmltree.ParseString(src)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := corelinear.Evaluate(parser.MustParse("/log/entry/msg"), evalctx.Root(doc), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Performance layer: plan cache + document index ------------------------

// prepBenchDoc is the shared ~4k-node document of the warm-vs-cold
// benchmarks.
func prepBenchDoc() *xmltree.Document {
	rng := rand.New(rand.NewSource(7))
	return xmltree.RandomDocument(rng, xmltree.GenConfig{
		Nodes: 4000, MaxFanout: 4, Tags: []string{"a", "b", "c", "d"},
		TextProb: 0.2, AttrProb: 0.2,
	})
}

// prepWorkloads are the repeated-query workloads of the README's
// Performance section, one pair per engine the index accelerates.
var prepWorkloads = []struct {
	name   string
	query  string
	engine Engine
}{
	{"cvt/descendant-chain", "//a//b//c", EngineCVT},
	{"cvt/pred", "//a[b]/c", EngineCVT},
	{"corelinear/path", "/descendant::a/child::b/descendant::c", EngineCoreLinear},
	{"corelinear/pred", "//a[b and not(c)]", EngineCoreLinear},
}

// BenchmarkRepeatedQuery measures one query evaluated over and over
// against one document — cold re-compiles every time and evaluates with
// the index disabled (the seed behaviour), warm hits the plan cache and
// the shared document index.
func BenchmarkRepeatedQuery(b *testing.B) {
	d := prepBenchDoc()
	ctx := evalctx.Root(d)
	for _, w := range prepWorkloads {
		b.Run(w.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q, err := Compile(w.query)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := q.EvalOptions(ctx, EvalOptions{Engine: w.engine, DisableIndex: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/warm", func(b *testing.B) {
			if _, err := MustPrepare(w.query).EvalOptions(ctx, EvalOptions{Engine: w.engine}); err != nil {
				b.Fatal(err) // prime plan cache and index
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := Prepare(w.query)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.EvalOptions(ctx, EvalOptions{Engine: w.engine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// batchBenchQueries is the multi-query-per-document workload.
var batchBenchQueries = []string{
	"//a//b", "//b//c", "//a[b]/c", "//c[a]", "//a[b and not(c)]",
	"/descendant::a/child::b", "//d//a", "//a/following-sibling::b",
	"//b[c]/ancestor::a", "//a//b//c", "//c/preceding-sibling::a", "//d[a]",
}

// BenchmarkMultiQuery evaluates a 12-query workload against one
// document: cold compiles each query fresh and evaluates index-disabled,
// warm runs EvalBatch over the shared index and plan cache.
func BenchmarkMultiQuery(b *testing.B) {
	d := prepBenchDoc()
	ctx := evalctx.Root(d)
	b.Run("cold-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, qs := range batchBenchQueries {
				q, err := Compile(qs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := q.EvalOptions(ctx, EvalOptions{DisableIndex: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm-batch", func(b *testing.B) {
		for _, r := range EvalBatch(d, batchBenchQueries, EvalOptions{}) {
			if r.Err != nil {
				b.Fatal(r.Err) // prime caches
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range EvalBatch(d, batchBenchQueries, EvalOptions{}) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// BenchmarkGuardOverhead is the paired measurement behind the guard's
// ≤3% disabled-overhead claim: the same cvt evaluation with no guard, a
// disabled guard (nil — the default for every caller that sets no limit),
// and an enabled guard with generous limits. "off" vs "on" is the number
// documented in docs/ROBUSTNESS.md.
func BenchmarkGuardOverhead(b *testing.B) {
	d := prepBenchDoc()
	ctx := evalctx.Root(d)
	q := MustCompile("//a[b and not(c)]//b")
	run := func(b *testing.B, opts EvalOptions) {
		b.Helper()
		opts.Engine = EngineCVT
		opts.DisableIndex = true
		for i := 0; i < b.N; i++ {
			if _, err := q.EvalOptions(ctx, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, EvalOptions{}) })
	b.Run("on", func(b *testing.B) {
		run(b, EvalOptions{
			Context: context.Background(), MaxOps: 1 << 40,
			MaxDepth: 1 << 20, MaxNodeSet: 1 << 30,
		})
	})
}
