// Facade-level seam tests for the bytecode VM: shared immutable
// bytecode under concurrent execution (run with -race via `make
// test-race`), and the guard seam — a budget stop must surface as the
// typed resource error with no partial result, exactly like the tree
// engines.

package xpathcomplexity

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/value"
)

// vmSeamDoc builds a document large enough that concurrent evaluations
// overlap in time and per-goroutine scratch actually gets exercised.
func vmSeamDoc(t testing.TB) *Document {
	t.Helper()
	var b []byte
	b = append(b, "<root>"...)
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			b = append(b, "<a><b/><c/></a>"...)
		case 1:
			b = append(b, "<a><b><a><c/></a></b></a>"...)
		case 2:
			b = append(b, "<c><a/></c>"...)
		}
	}
	b = append(b, "</root>"...)
	d, err := ParseDocumentString(string(b))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestVMConcurrentCompiled: one Compiled whose plan bound EngineVM,
// evaluated from many goroutines at once. The bytecode Program is
// shared and immutable; every per-run register (frontier, accumulator,
// condition slots, scratch arena) is checked out per goroutine, so all
// results must be identical and the race detector must stay silent.
func TestVMConcurrentCompiled(t *testing.T) {
	d := vmSeamDoc(t)
	ctx := RootContext(d)
	queries := []string{"//a[b and not(c)]", "//a[b]/c", "//a[.//c]"}
	for _, qs := range queries {
		c := MustPrepare(qs)
		if c.Bound != EngineVM {
			t.Fatalf("%s bound %v, want vm", qs, c.Bound)
		}
		want, err := c.EvalOptions(ctx, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 16
		var wg sync.WaitGroup
		results := make([]Value, goroutines)
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for rep := 0; rep < 8; rep++ {
					results[g], errs[g] = c.EvalOptions(ctx, EvalOptions{})
					if errs[g] != nil {
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			if errs[g] != nil {
				t.Fatalf("%s goroutine %d: %v", qs, g, errs[g])
			}
			if !value.Equal(want, results[g]) {
				t.Fatalf("%s goroutine %d: %s != sequential %s", qs, g, results[g], want)
			}
		}
	}
}

// TestVMEvalBatch: a batch of duplicate and distinct VM-bound queries
// through EvalBatch's worker pool — shared bytecode via the plan cache,
// per-goroutine execution state via the scratch pools.
func TestVMEvalBatch(t *testing.T) {
	d := vmSeamDoc(t)
	// All four queries carry predicates, so none is streaming-eligible
	// and every one binds the VM.
	base := []string{"//a[b and not(c)]", "//a[b]/c", "//a[.//c]", "//c[a]"}
	var queries []string
	for i := 0; i < 8; i++ {
		queries = append(queries, base...)
	}
	m := NewMetrics()
	results := EvalBatch(d, queries, EvalOptions{Workers: 4, Metrics: m})
	want := make(map[string]Value)
	for _, qs := range base {
		v, err := MustPrepare(qs).EvalRoot(d)
		if err != nil {
			t.Fatal(err)
		}
		want[qs] = v
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Query, r.Err)
		}
		if !value.Equal(r.Value, want[r.Query]) {
			t.Fatalf("%s: batch %s != direct %s", r.Query, r.Value, want[r.Query])
		}
	}
	if got := m.Snapshot().Counter("engine.vm.evals"); got != int64(len(queries)) {
		t.Errorf("engine.vm.evals = %d, want %d (every batch query should have run the VM)", got, len(queries))
	}
}

// TestVMGuardSeam: resource limits cut the VM off with the typed budget
// error and no partial result, at opcode granularity, through the public
// options — the same contract the tree engines honor.
func TestVMGuardSeam(t *testing.T) {
	d := vmSeamDoc(t)
	ctx := RootContext(d)
	for _, qs := range []string{"//a[b and not(c)]", "//a[b]/c", "//a[.//c]"} {
		v, err := MustCompile(qs).EvalOptions(ctx, EvalOptions{Engine: EngineVM, MaxOps: 1})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: err = %v, want ErrBudgetExceeded", qs, err)
		}
		var be *evalctx.BudgetError
		if !errors.As(err, &be) || be.Limit != "ops" {
			t.Fatalf("%s: err = %v, want *BudgetError{Limit: %q}", qs, err, "ops")
		}
		if v != nil {
			t.Fatalf("%s: partial result %s alongside budget error", qs, v)
		}
	}
	// The node-set ceiling fires on the VM's per-step check as well. The
	// query must keep its frontier sparse (dense bitsets are O(|D|) and
	// exempt, exactly as in corelinear): root/* materializes all ~300
	// children of the root element as an explicit list.
	v, err := MustCompile("root/*").EvalOptions(ctx, EvalOptions{Engine: EngineVM, MaxNodeSet: 2})
	var be *evalctx.BudgetError
	if !errors.As(err, &be) || be.Limit != "node-set" {
		t.Fatalf("node-set limit: err = %v, want *BudgetError{Limit: %q}", err, "node-set")
	}
	if v != nil {
		t.Fatalf("node-set limit: partial result %s alongside budget error", v)
	}
	// Generous limits are invisible.
	got, err := MustCompile("//a[b and not(c)]").EvalOptions(ctx, EvalOptions{
		Engine: EngineVM, MaxOps: 50_000_000, MaxNodeSet: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustCompile("//a[b and not(c)]").EvalOptions(ctx, EvalOptions{Engine: EngineCoreLinear})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("guarded vm %s != corelinear %s", got, want)
	}
}

// TestVMBudgetConcurrent: budget-stopped and successful VM runs
// interleaved across goroutines — guard state is per evaluation, so a
// trip in one goroutine must never leak into another (run under -race
// via `make guard-race`).
func TestVMBudgetConcurrent(t *testing.T) {
	d := vmSeamDoc(t)
	ctx := RootContext(d)
	c := MustPrepare("//a[b and not(c)]")
	want, err := c.EvalOptions(ctx, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				if g%2 == 0 {
					v, err := c.EvalOptions(ctx, EvalOptions{MaxOps: 1})
					if !errors.Is(err, ErrBudgetExceeded) || v != nil {
						errCh <- fmt.Errorf("budgeted run: v=%v err=%v", v, err)
						return
					}
				} else {
					v, err := c.EvalOptions(ctx, EvalOptions{})
					if err != nil || !value.Equal(v, want) {
						errCh <- fmt.Errorf("unbudgeted run: v=%v err=%v", v, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
