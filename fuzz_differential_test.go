package xpathcomplexity

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"xpathcomplexity/internal/eval/corelinear"
	"xpathcomplexity/internal/eval/enginetest"
	"xpathcomplexity/internal/eval/evalctx"
	"xpathcomplexity/internal/eval/nauxpda"
	"xpathcomplexity/internal/value"
	"xpathcomplexity/internal/vm"
	"xpathcomplexity/internal/xmltree"
)

// canonValue renders a value in a canonical byte-for-byte comparable
// form — enginetest.CanonValue, shared with the cached-equivalence
// harness so "byte-identical" means the same thing in both suites.
func canonValue(v Value) string { return enginetest.CanonValue(v) }

// nauxpdaOutside reports whether err is one of the fragment-rejection
// sentinels — the query is legitimately outside (bounded-negation)
// pXPath and the LOGCFL engine is excused from the vote.
func nauxpdaOutside(err error) bool {
	return errors.Is(err, nauxpda.ErrIteratedPredicates) ||
		errors.Is(err, nauxpda.ErrNegationDepth) ||
		errors.Is(err, nauxpda.ErrForbiddenFunction) ||
		errors.Is(err, nauxpda.ErrBooleanRelOp) ||
		errors.Is(err, nauxpda.ErrArithDepth)
}

// FuzzDifferentialEngines is the cross-engine differential suite: for a
// random document and random queries drawn from one of the five
// generator profiles, every applicable engine must produce the same
// value, and the warm path (plan cache hit + document index) must agree
// byte-for-byte with a cold compile evaluated with the index disabled.
//
// The seed corpus covers PF, positive Core, Core, pWF, full-XPath and
// positional profiles, so a plain `go test` run already exercises all
// engines on all profiles.
func FuzzDifferentialEngines(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(10))  // PF
	f.Add(int64(2), uint8(1), uint8(25))  // positive core
	f.Add(int64(3), uint8(2), uint8(40))  // core
	f.Add(int64(4), uint8(3), uint8(55))  // pWF
	f.Add(int64(5), uint8(4), uint8(70))  // full
	f.Add(int64(6), uint8(2), uint8(3))   // core on a tiny document
	f.Add(int64(7), uint8(4), uint8(200)) // full on a wider document
	f.Add(int64(8), uint8(5), uint8(45))  // positional (counting fragment)
	f.Add(int64(9), uint8(5), uint8(6))   // positional on a tiny document

	f.Fuzz(func(t *testing.T, seed int64, profile, shape uint8) {
		rng := rand.New(rand.NewSource(seed))
		prof := enginetest.GenProfile(int(profile) % 6)
		d := xmltree.RandomDocument(rng, xmltree.GenConfig{
			Nodes:     10 + int(shape)%90,
			MaxFanout: 1 + int(shape)%5,
			Tags:      []string{"a", "b", "c"},
			TextProb:  0.2,
			AttrProb:  0.2,
		})
		ctx := RootContext(d)
		gen := enginetest.NewQueryGen(rng, prof)

		for i := 0; i < 8; i++ {
			qs := gen.Query()
			q, err := Compile(qs)
			if err != nil {
				t.Fatalf("generator produced invalid query %q: %v", qs, err)
			}

			type res struct {
				engine string
				v      Value
			}
			var got []res
			run := func(name string, opts EvalOptions) {
				v, err := q.EvalOptions(ctx, opts)
				if err != nil {
					t.Fatalf("profile %v query %q: engine %s failed: %v", prof, qs, name, err)
				}
				got = append(got, res{name, v})
			}

			// The naive engine is exponential (Section 3 of the paper), so
			// rare generated queries would stall the fuzz worker past its
			// hang limit; a generous operation budget keeps it in the vote
			// on everything else and excuses only runaway inputs.
			nctr := &Counter{Budget: 5_000_000}
			if v, err := q.EvalOptions(ctx, EvalOptions{Engine: EngineNaive, Counter: nctr}); err == nil {
				got = append(got, res{"naive", v})
			} else if !errors.Is(err, evalctx.ErrBudget) {
				t.Fatalf("profile %v query %q: engine naive failed: %v", prof, qs, err)
			}
			run("cvt-cold", EvalOptions{Engine: EngineCVT, DisableIndex: true})
			run("cvt-indexed", EvalOptions{Engine: EngineCVT})
			if corelinear.CheckCounting(q.Expr) == nil {
				run("corelinear-cold", EvalOptions{Engine: EngineCoreLinear, DisableIndex: true})
				run("corelinear-indexed", EvalOptions{Engine: EngineCoreLinear})
			}
			// The parallel engine serves strict Core XPath only — no
			// positional predicates.
			if corelinear.CheckCore(q.Expr) == nil {
				run("parallel", EvalOptions{Engine: EngineParallel, Workers: 2})
			}
			if _, err := q.vmProgram(); err == nil {
				run("vm-cold", EvalOptions{Engine: EngineVM, DisableIndex: true})
				run("vm-indexed", EvalOptions{Engine: EngineVM})
				// Fusion and the peephole pass are encoding choices, never
				// semantic ones: the superinstruction-free and unoptimized
				// bytecode must stay in the vote too.
				for _, alt := range []struct {
					name string
					opts vm.Options
				}{
					{"vm-unfused", vm.Options{DisableFusion: true}},
					{"vm-peephole-off", vm.Options{DisablePeephole: true}},
				} {
					prog, err := vm.CompileWith(q.Expr, alt.opts)
					if err != nil {
						t.Fatalf("query %q: default bytecode compiled but %s did not: %v", qs, alt.name, err)
					}
					v, err := prog.Run(ctx, vm.RunOptions{})
					if err != nil {
						t.Fatalf("query %q: %s run failed: %v", qs, alt.name, err)
					}
					got = append(got, res{alt.name, v})
				}
				// Dispatch strategy is invisible too.
				tbl, err := vm.Compile(q.Expr)
				if err != nil {
					t.Fatalf("query %q: vm recompile failed: %v", qs, err)
				}
				v, err := tbl.Run(ctx, vm.RunOptions{TableDispatch: true})
				if err != nil {
					t.Fatalf("query %q: table-dispatch vm run failed: %v", qs, err)
				}
				got = append(got, res{"vm-table", v})
			}
			if v, err := q.EvalOptions(ctx, EvalOptions{Engine: EngineNAuxPDA, NegationBound: 8}); err == nil {
				got = append(got, res{"nauxpda", v})
			} else if !nauxpdaOutside(err) {
				t.Fatalf("profile %v query %q: nauxpda failed outside the fragment checks: %v", prof, qs, err)
			}

			for _, r := range got[1:] {
				if !value.Equal(got[0].v, r.v) {
					t.Fatalf("profile %v query %q: %s = %s, but %s = %s",
						prof, qs, got[0].engine, canonValue(got[0].v), r.engine, canonValue(r.v))
				}
			}

			// Backend arm: the storage backend is an encoding choice, never
			// a semantic one. Re-evaluating on the columnar conversion of
			// the same document must reproduce the pointer-backed results
			// byte for byte (the backends share Ord numbering), engine by
			// engine, cold (index disabled) and indexed.
			cdoc := CompactDocument(d)
			if cdoc.Fingerprint() != d.Fingerprint() {
				t.Fatalf("columnar conversion changed the fingerprint: %x vs %x",
					cdoc.Fingerprint(), d.Fingerprint())
			}
			cctx := RootContext(cdoc)
			runBackendArm := func(name string, opts EvalOptions) {
				pv, perr := q.EvalOptions(ctx, opts)
				cv, cerr := q.EvalOptions(cctx, opts)
				if (perr == nil) != (cerr == nil) {
					t.Fatalf("profile %v query %q: engine %s backends disagree on error: pointer %v, columnar %v",
						prof, qs, name, perr, cerr)
				}
				if perr != nil {
					return
				}
				if pc, cc := canonValue(pv), canonValue(cv); pc != cc {
					t.Fatalf("profile %v query %q: engine %s pointer %s != columnar %s",
						prof, qs, name, pc, cc)
				}
			}
			runBackendArm("auto-cold", EvalOptions{DisableIndex: true})
			runBackendArm("cvt-indexed", EvalOptions{Engine: EngineCVT})
			if corelinear.CheckCounting(q.Expr) == nil {
				runBackendArm("corelinear-indexed", EvalOptions{Engine: EngineCoreLinear})
			}
			if _, err := q.vmProgram(); err == nil {
				runBackendArm("vm-indexed", EvalOptions{Engine: EngineVM})
			}

			// Warm path: plan-cache hit plus shared index must reproduce
			// the cold auto-engine result byte-for-byte.
			cold, err := q.EvalOptions(ctx, EvalOptions{DisableIndex: true})
			if err != nil {
				t.Fatalf("query %q: cold auto eval failed: %v", qs, err)
			}
			c, err := Prepare(qs)
			if err != nil {
				t.Fatalf("query %q: Prepare failed after Compile succeeded: %v", qs, err)
			}
			if _, err := c.Eval(ctx); err != nil { // populate caches
				t.Fatalf("query %q: prepared eval failed: %v", qs, err)
			}
			warm, err := c.Eval(ctx) // guaranteed warm: plan cached, index built
			if err != nil {
				t.Fatalf("query %q: warm eval failed: %v", qs, err)
			}
			if cw, cc := canonValue(warm), canonValue(cold); cw != cc {
				t.Fatalf("query %q: warm %s != cold %s", qs, cw, cc)
			}

			// Cache arm: a result served through the shared result cache —
			// the populating miss, the warm hit, and N concurrent lookups
			// collapsed to one evaluation by singleflight — must reproduce
			// the cold result byte for byte.
			rc := NewResultCache(0, 0)
			copts := EvalOptions{Cache: rc, DisableIndex: true}
			first, err := q.EvalOptions(ctx, copts)
			if err != nil {
				t.Fatalf("query %q: cache-miss eval failed: %v", qs, err)
			}
			warmCached, err := q.EvalOptions(ctx, copts)
			if err != nil {
				t.Fatalf("query %q: cache-hit eval failed: %v", qs, err)
			}
			if cf, cc := canonValue(first), canonValue(cold); cf != cc {
				t.Fatalf("query %q: cache miss %s != cold %s", qs, cf, cc)
			}
			if cw, cc := canonValue(warmCached), canonValue(cold); cw != cc {
				t.Fatalf("query %q: cache hit %s != cold %s", qs, cw, cc)
			}
			if st := rc.Stats(); st.Hits == 0 {
				t.Fatalf("query %q: second cached eval was not a hit: %+v", qs, st)
			}
			rc2 := NewResultCache(0, 0)
			const flight = 4
			var wg sync.WaitGroup
			concurrent := make([]Value, flight)
			concurrentErr := make([]error, flight)
			for k := 0; k < flight; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					concurrent[k], concurrentErr[k] = q.EvalOptions(ctx, EvalOptions{Cache: rc2, DisableIndex: true})
				}(k)
			}
			wg.Wait()
			for k := 0; k < flight; k++ {
				if concurrentErr[k] != nil {
					t.Fatalf("query %q: concurrent cached eval failed: %v", qs, concurrentErr[k])
				}
				if ck, cc := canonValue(concurrent[k]), canonValue(cold); ck != cc {
					t.Fatalf("query %q: concurrent cached %s != cold %s", qs, ck, cc)
				}
			}
			if st := rc2.Stats(); st.Misses != 1 {
				t.Fatalf("query %q: %d concurrent identical lookups ran %d evaluations, want 1 (singleflight)",
					qs, flight, st.Misses)
			}

			// Observation must not perturb evaluation: the auto engine
			// with full tracing and metrics enabled must reproduce the
			// uninstrumented cold result byte for byte.
			sink := NewRingSink(512)
			m := NewMetrics()
			traced, err := q.EvalOptions(ctx, EvalOptions{
				DisableIndex: true, Trace: sink, Metrics: m, Counter: &Counter{},
			})
			if err != nil {
				t.Fatalf("query %q: traced eval failed: %v", qs, err)
			}
			if ct, cc := canonValue(traced), canonValue(cold); ct != cc {
				t.Fatalf("query %q: traced %s != plain %s", qs, ct, cc)
			}
			if len(sink.Events()) == 0 {
				t.Fatalf("query %q: tracer produced no events", qs)
			}

			// A guard with generous limits must be invisible: same bytes
			// as the unguarded cold run, through the full EngineAuto
			// ladder (streaming rung included).
			guarded, err := q.EvalOptions(ctx, EvalOptions{
				DisableIndex: true,
				Context:      context.Background(),
				MaxOps:       50_000_000,
				MaxDepth:     1 << 20,
				MaxNodeSet:   1 << 20,
			})
			if err != nil {
				t.Fatalf("query %q: guarded eval failed: %v", qs, err)
			}
			if cg, cc := canonValue(guarded), canonValue(cold); cg != cc {
				t.Fatalf("query %q: guarded %s != unguarded %s", qs, cg, cc)
			}

			// A tiny budget must produce either the correct complete
			// value (trivial queries legitimately finish within one op
			// charge batch) or a typed resource error with no partial
			// result — from every engine.
			for _, eng := range []Engine{EngineAuto, EngineNaive, EngineCVT, EngineCoreLinear, EngineVM, EngineNAuxPDA} {
				if eng == EngineCoreLinear && corelinear.CheckCounting(q.Expr) != nil {
					continue
				}
				if eng == EngineVM {
					if _, err := q.vmProgram(); err != nil {
						continue
					}
				}
				v, err := q.EvalOptions(ctx, EvalOptions{
					Engine: eng, MaxOps: 1, NegationBound: 8, DisableIndex: true,
				})
				if err == nil {
					if cv, cc := canonValue(v), canonValue(cold); cv != cc {
						t.Fatalf("query %q: engine %s under MaxOps=1 returned wrong value %s (want %s)",
							qs, eng, cv, cc)
					}
					continue
				}
				if eng == EngineNAuxPDA && nauxpdaOutside(err) {
					continue
				}
				if !errors.Is(err, ErrBudgetExceeded) {
					t.Fatalf("query %q: engine %s under MaxOps=1 failed with untyped error: %v", qs, eng, err)
				}
				if v != nil {
					t.Fatalf("query %q: engine %s returned partial value %s alongside budget error",
						qs, eng, canonValue(v))
				}
			}
		}
	})
}
