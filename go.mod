module xpathcomplexity

go 1.22
